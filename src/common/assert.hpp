// Always-on invariant checking for the simulator.
//
// Simulator correctness (packet conservation, FIFO ordering, cycle
// monotonicity) is part of the deliverable, so EMX_CHECK stays enabled in
// Release builds. EMX_DCHECK compiles out when EMX_DISABLE_DCHECK is set.
#pragma once

#include <string>

namespace emx {

/// Prints a diagnostic including file/line and aborts. Never returns.
[[noreturn]] void panic(const char* file, int line, const std::string& message);

}  // namespace emx

#define EMX_CHECK(cond, msg)                              \
  do {                                                    \
    if (!(cond)) {                                        \
      ::emx::panic(__FILE__, __LINE__,                    \
                   std::string("EMX_CHECK failed: ") +    \
                       #cond + " — " + (msg));            \
    }                                                     \
  } while (0)

#define EMX_UNREACHABLE(msg) \
  ::emx::panic(__FILE__, __LINE__, std::string("unreachable: ") + (msg))

#ifdef EMX_DISABLE_DCHECK
#define EMX_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#else
#define EMX_DCHECK(cond, msg) EMX_CHECK(cond, msg)
#endif
