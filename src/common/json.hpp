// Minimal JSON value, parser and writer.
//
// The sweep supervisor speaks JSON at every boundary — sweep specs in,
// per-cell result files through the cache, the figure-ready aggregate
// out, and one JSON object per journal line — so the repo needs a JSON
// implementation with two properties the usual suspects don't promise:
//
//   * deterministic output: dump() of the same Value is byte-identical
//     across runs and machines (objects keep insertion order, doubles
//     print shortest-round-trip via %.17g tightening), because aggregate
//     files are byte-compared as the crash-convergence oracle;
//   * hostile-input honesty: parse() never aborts; it returns a
//     readable error with the byte offset, the way snapshot decoding
//     reports corruption (journals and caches cross process crashes).
//
// Numbers are kept as int64 when they were written without a fraction
// or exponent, double otherwise, so integer cycle counts survive a
// parse→dump round trip exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emx::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool v);
  static Value integer(std::int64_t v);
  static Value real(double v);
  static Value string(std::string v);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0) const;
  const std::string& as_string() const;  // "" unless kString

  // --- array ---
  Value& push(Value v);  // returns the stored element
  const std::vector<Value>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }

  // --- object (insertion-ordered; set() replaces in place) ---
  Value& set(const std::string& key, Value v);
  const Value* find(const std::string& key) const;  // nullptr when absent
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Serializes deterministically. indent < 0 gives one line with no
  /// padding; indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses `text`; on failure returns a null Value and sets `error` to
  /// a message with the byte offset. On success `error` is cleared.
  static Value parse(std::string_view text, std::string& error);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added). Exposed for the journal writer, which formats lines by hand
/// to control what its CRC covers.
std::string escape(std::string_view s);

}  // namespace emx::json
