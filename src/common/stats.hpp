// Streaming statistics accumulators used by instrumentation and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/serializer.hpp"

namespace emx {

/// Welford-style running accumulator: count / min / max / mean / stddev.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  void merge(const RunningStat& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  std::string summary() const;

  /// Serializes the full accumulator (doubles as raw IEEE-754 bits, so
  /// the encoding is exact — infinities in the empty min/max included).
  void save(ser::Serializer& s) const {
    s.u64(count_);
    s.f64(min_);
    s.f64(max_);
    s.f64(mean_);
    s.f64(m2_);
    s.f64(sum_);
  }

 private:
  std::uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double percentile(double p) const;  ///< p in [0,100]; linear within bucket.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace emx
