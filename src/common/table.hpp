// Plain-text and CSV table rendering for the benchmark harness. Every
// figure-reproduction bench prints its series through this so the output
// format is uniform and machine-readable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace emx {

/// A rectangular table: a header row plus data rows of equal width.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g, integers exactly.
  static std::string cell(double v);
  static std::string cell(std::uint64_t v);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Aligned plain-text rendering.
  std::string to_text() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emx
