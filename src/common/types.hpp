// Fundamental fixed-width types shared by every EM-X simulator module.
//
// The EMC-Y is a 32-bit machine: memory words, packet words and registers
// are all 32 bits. Simulation time is counted in 20 MHz clock cycles.
#pragma once

#include <cstdint>
#include <limits>

namespace emx {

/// One EMC-Y machine word (32 bits). Packets carry two of these.
using Word = std::uint32_t;

/// Simulated time in EMC-Y clock cycles (20 MHz -> 50 ns per cycle).
using Cycle = std::uint64_t;

/// Processor (processing element) index within the machine, 0..P-1.
using ProcId = std::uint32_t;

/// Word-granular address within one PE's local memory.
using LocalAddr = std::uint32_t;

/// Identifies a thread (activation) within one PE.
using ThreadId = std::uint32_t;

inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();
inline constexpr ThreadId kInvalidThread = std::numeric_limits<ThreadId>::max();

/// Default EMC-Y clock frequency in Hz (the prototype runs at 20 MHz).
inline constexpr double kDefaultClockHz = 20.0e6;

/// Converts a cycle count to seconds at a given clock frequency.
constexpr double cycles_to_seconds(Cycle cycles, double clock_hz) {
  return static_cast<double>(cycles) / clock_hz;
}

/// Converts seconds to (truncated) cycles at a given clock frequency.
constexpr Cycle seconds_to_cycles(double seconds, double clock_hz) {
  return static_cast<Cycle>(seconds * clock_hz);
}

/// True if `v` is a power of two (and nonzero).
constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Integer log2 for powers of two; e.g. ilog2(64) == 6.
constexpr unsigned ilog2(std::uint64_t v) {
  unsigned r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// Ceil(log2(v)) for v >= 1.
constexpr unsigned ceil_log2(std::uint64_t v) {
  unsigned r = ilog2(v);
  return (std::uint64_t{1} << r) == v ? r : r + 1;
}

}  // namespace emx
