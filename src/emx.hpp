// Umbrella header: the public API of the EM-X reproduction.
//
//   #include "emx.hpp"
//
// pulls in the machine, configuration, thread API, instrumentation,
// the two paper applications, the analytic model, tracing and the ISA
// toolchain. Individual headers remain includable for finer control.
#pragma once

#include "analysis/checker.hpp"      // --check correctness checkers
#include "apps/bitonic.hpp"          // multithreaded bitonic sorting
#include "apps/distribution.hpp"     // blocked distribution helpers
#include "apps/fft.hpp"              // multithreaded FFT (blocked layout)
#include "apps/fft_cyclic.hpp"       // multithreaded FFT (cyclic layout)
#include "apps/host_reference.hpp"   // host-side ground truth
#include "apps/jacobi.hpp"           // Jacobi relaxation (halo exchange)
#include "apps/verify.hpp"           // result checking
#include "common/cli.hpp"            // flag parsing for drivers
#include "common/table.hpp"          // report rendering
#include "core/config.hpp"           // MachineConfig + presets
#include "core/experiment.hpp"       // sweep runner
#include "core/instrumentation.hpp"  // MachineReport (Fig. 6-9 metrics)
#include "core/machine.hpp"          // emx::Machine
#include "core/overlap.hpp"          // overlap-efficiency analysis
#include "isa/assembler.hpp"         // EMC-Y assembly
#include "isa/builder.hpp"           // fluent code builder
#include "isa/interpreter.hpp"       // ISA threads
#include "model/saavedra.hpp"        // [16] analytic multithreading model
#include "runtime/thread_api.hpp"    // coroutine thread bodies
#include "trace/gantt.hpp"           // timeline rendering
#include "trace/trace.hpp"           // event tracing
#include "workloads/bfs.hpp"         // level-synchronous graph traversal
#include "workloads/histsort.hpp"    // async-BSP bucketed integer sort
#include "workloads/ptrchase.hpp"    // pointer-chasing latency streams
#include "workloads/registry.hpp"    // workload plugin registry
#include "workloads/spmv.hpp"        // CSR SpMV with remote gathers
