// WorkloadRegistry — the machine-readable catalogue of applications.
//
// Every runnable application registers a Spec (name, one-line
// description, default sizes, builder, metrics component). The drivers
// derive everything from the registry instead of hardcoded string
// lists: `emx_run --app=<name>` validation and help text, --list-apps,
// RunManifest app validation on resume/replay, the sweep and wallclock
// benches, and the irregular overlap study.
//
// Registration: the built-in workloads (the four paper apps plus the
// irregular suite) are registered on first Registry::instance() use —
// a function call rather than static-initializer magic, because the
// plugins live in a static library whose unreferenced objects the
// linker is free to drop. External translation units linked into a
// binary can still self-register with a namespace-scope Registrar.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace emx {
class Machine;
}

namespace emx::workloads {

/// One registered application.
struct Spec {
  std::string name;         ///< the --app value; unique, stable
  std::string description;  ///< one line for --list-apps / docs

  /// Default problem size, used when the driver's flags are left at
  /// their defaults (and shown by --list-apps).
  std::uint64_t default_size_per_proc = 1024;
  std::uint32_t default_threads = 4;

  /// Name of the Machine component this workload's metrics contribution
  /// derives from ("sim", "network", "pe0", ...). build() resolves it
  /// through Machine::sealed_component() — the tripwire that catches a
  /// plugin naming a unit that never made it into the sealed component
  /// registry (and with it, snapshots and replay digests).
  std::string metrics_component = "sim";

  /// Whether the workload's thread bodies confine every cross-PE
  /// interaction to the network (packets have >= the fabric's lookahead
  /// of latency, which is what makes conservative time windows safe).
  /// Workloads that keep zero-latency host-side channels between PEs —
  /// e.g. an in-flight counter one PE polls while others decrement it —
  /// must clear this; the runner then pins them to the sequential
  /// engine, where results are identical by construction. See
  /// DESIGN.md §15.
  bool window_safe = true;

  /// Constructs the application over `machine` (registers its thread
  /// entries, loads PE memories, spawns workers) and returns the built
  /// instance. Panics (EMX_CHECK) on unsatisfiable parameters.
  using Builder = std::unique_ptr<Workload> (*)(Machine& machine,
                                                const Params& params);
  Builder build = nullptr;
};

/// Ordered catalogue of every registered workload. Registration order is
/// fixed (builtins first, in a deterministic sequence), so every derived
/// list — help text, --list-apps, bench sweeps — is deterministic too.
class Registry {
 public:
  /// The process-wide registry, with all built-in workloads registered.
  static Registry& instance();

  /// Registers `spec` next in catalogue order; panics on a duplicate or
  /// empty name or a null builder.
  void add(Spec spec);

  /// The spec named `name`, or nullptr.
  const Spec* find(const std::string& name) const;

  const std::vector<Spec>& specs() const { return specs_; }

  /// "sort | fft | ... | histsort" — help text and error messages.
  std::string name_list(const char* separator = " | ") const;

 private:
  std::vector<Spec> specs_;
};

/// Namespace-scope self-registration helper for plugin translation
/// units:  static workloads::Registrar reg(my_spec);
struct Registrar {
  explicit Registrar(Spec spec);
};

/// The one readable unknown-app diagnostic, shared verbatim by the CLI
/// flag path and the resumed-manifest path (both are exit 2).
std::string unknown_app_message(const std::string& app);

/// Looks `app` up, asserts its metrics component exists in the machine's
/// sealed component registry, and builds it. Returns nullptr with
/// `error` = unknown_app_message(app) for an unknown name.
std::unique_ptr<Workload> build(Machine& machine, const std::string& app,
                                const Params& params, std::string& error);

}  // namespace emx::workloads
