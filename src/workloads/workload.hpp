// The workload plugin interface: one built application instance, bound
// to a Machine, ready to run and verify.
//
// A workload plugin supplies three things through workloads::Spec
// (registry.hpp): a builder that constructs the program over the
// coroutine thread-library API, a verifier against a host reference, and
// a metrics contribution folded into the MachineReport. The drivers
// (emx_run, the snapshot runner, the benches) only ever talk to this
// interface — adding an application touches src/workloads/ and nothing
// in the core layers.
#pragma once

#include <cstdint>

namespace emx {
struct MachineReport;  // core/instrumentation.hpp — implementers' .cpps
                       // include it; this header stays declaration-only.
}

namespace emx::workloads {

/// The workload half of a RunManifest, decoupled from snapshot/ so the
/// workloads layer depends only downward (core, apps, runtime). The
/// snapshot runner converts RunManifest -> Params; fields a workload
/// does not use are simply ignored by its builder.
struct Params {
  std::uint64_t size_per_proc = 1024;  ///< elements/points/vertices per PE
  std::uint32_t threads = 4;           ///< h, fine-grain threads per PE
  std::uint32_t iterations = 8;        ///< iterative apps (jacobi sweeps)
  std::uint64_t seed = 1;              ///< workload RNG seed
  bool block_reads = false;            ///< sort variant
  bool local_phase = true;             ///< fft local iterations
};

/// A built application instance. The object owns the app's host-side
/// state and must outlive Machine::run() (worker coroutines hold
/// pointers into it).
class Workload {
 public:
  virtual ~Workload() = default;

  /// False when this configuration leaves nothing to check (e.g. the
  /// FFT without its local phase computes no complete transform).
  virtual bool verifiable() const { return true; }

  /// Checks the application result against the host reference. Valid
  /// after the machine ran; meaningless when !verifiable().
  virtual bool verify() const = 0;

  /// Folds per-application measurements (frontier sizes, remote-gather
  /// counts, ...) into MachineReport::app_metrics. Valid after the
  /// machine ran. Default: nothing to contribute.
  virtual void contribute(MachineReport& report) const { (void)report; }
};

}  // namespace emx::workloads
