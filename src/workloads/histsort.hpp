// Asynchronous-BSP bucketed integer sort with one-sided remote bucket
// appends (after the LCI+OpenMP asynchronous BSP sorting study,
// PAPERS.md).
//
// Each PE holds m random keys from a fixed range. The range is
// partitioned evenly over the PEs; every key is appended to its owner
// PE's bucket — remote keys by a one-sided thread invocation carrying
// the key as the packet's argument word, fire-and-forget, fully
// overlapped with the ongoing scan (the "asynchronous" in async-BSP:
// no per-superstep send/receive coupling). A barrier plus an in-flight
// drain ends the exchange; each PE then sorts its bucket locally.
// Concatenating the buckets in PE order yields the globally sorted
// sequence, compared bitwise against a host std::sort.
//
// The all-to-all scatter is the stress case for the reliable-transport
// layer: under --fault-* every append rides the exactly-once channel,
// and the drain cannot release the sort phase until every retransmitted
// invocation has landed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "workloads/workload.hpp"

namespace emx::workloads {

struct HistsortParams {
  std::uint64_t n = 2048;     ///< keys total (P | n)
  std::uint32_t threads = 4;  ///< h, threads per PE
  std::uint64_t seed = 0x5EED0008;

  // Instruction budgets (cycles).
  Cycle scan_cycles = 2;    ///< key load + bucket-owner computation
  Cycle append_cycles = 2;  ///< bucket slot claim + store
  Cycle sort_cycles = 4;    ///< per key-comparison in the local sort
};

/// Keys are drawn from [0, kHistsortKeyRange); the bucket partition is
/// dest = key * P / kHistsortKeyRange, monotone in the key.
inline constexpr std::uint64_t kHistsortKeyRange = 1ull << 20;

class HistsortApp final : public Workload {
 public:
  HistsortApp(Machine& machine, HistsortParams params);

  void setup();

  const HistsortParams& params() const { return params_; }

  /// Bucket owner of `key`.
  ProcId bucket_owner(Word key) const;

  /// Concatenation of the per-PE buckets in PE order (valid after run()).
  std::vector<Word> gather_sorted() const;

  /// Host reference: all keys, std::sorted.
  std::vector<Word> host_reference() const;

  bool verify() const override;
  void contribute(MachineReport& report) const override;

  LocalAddr key_addr(std::uint64_t k) const;
  LocalAddr bucket_addr(std::uint64_t slot) const;

 private:
  friend rt::ThreadBody histsort_worker(HistsortApp* app, rt::ThreadApi api,
                                        Word thread_index);
  friend rt::ThreadBody histsort_append(HistsortApp* app, rt::ThreadApi api,
                                        Word key);

  /// Claims the next bucket slot on `owner` and stores `key` — no
  /// suspension, so slot claims cannot interleave.
  void append(proc::Memory& mem, ProcId owner, Word key);

  std::uint64_t per_proc_keys() const;

  /// Host-side exchange bookkeeping per PE.
  struct PerProc {
    std::uint64_t expected = 0;  ///< exact bucket size, known at setup
    std::uint64_t fill = 0;      ///< appends committed so far
  };

  Machine& machine_;
  HistsortParams params_;
  std::vector<Word> keys_;  ///< host mirror: all n keys, PE-major
  std::vector<PerProc> state_;
  std::uint64_t inflight_ = 0;  ///< remote appends issued, not yet landed
  std::uint64_t local_appends_ = 0;
  std::uint64_t remote_appends_ = 0;
  std::uint32_t worker_entry_ = 0;
  std::uint32_t append_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody histsort_worker(HistsortApp* app, rt::ThreadApi api,
                               Word thread_index);
rt::ThreadBody histsort_append(HistsortApp* app, rt::ThreadApi api, Word key);

class Registry;
void register_histsort_workload(Registry& registry);

}  // namespace emx::workloads
