// Level-synchronous breadth-first search over a deterministic seeded
// graph — the canonical irregular-traversal workload (the Emu Chick
// suite's lead algorithm; PAPERS.md).
//
// The graph is a uniform-degree digraph: n vertices, `degree` random
// out-edges each, block-distributed (vertex v lives on PE v / (n/P)).
// Each level, every PE's h worker threads scan this PE's slice of the
// current frontier and, for each edge, either visit the target locally
// or fire a one-sided thread invocation at the owner — the EM-X idiom
// for a remote atomic: the spawned visit thread does the
// check-dist/set-dist/append-frontier sequence on the owner's EXU
// without suspension, so no remote read-modify-write race exists.
// Remote access is data-dependent and unpredictable: exactly the
// pattern the paper's latency-tolerance claim is about and the regular
// kernels (sort, FFT) never produce.
//
// Level synchronisation is asynchronous-BSP style: workers issue visits
// without waiting (overlap), then a barrier, then one designated thread
// drains the global in-flight visit counter, then a second barrier
// publishes the swapped frontier. Deterministic by construction — the
// simulator's event order is deterministic and every counter lives in
// host-side app state rebuilt identically on resume-by-replay.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "workloads/workload.hpp"

namespace emx::workloads {

struct BfsParams {
  std::uint64_t n = 8192;     ///< vertices (P | n)
  std::uint32_t threads = 4;  ///< h, threads per PE
  std::uint64_t seed = 0x5EED0005;
  std::uint32_t degree = 8;   ///< out-edges per vertex
  Word root = 0;              ///< search root (global vertex id)

  // Instruction budgets (cycles).
  Cycle frontier_cycles = 2;  ///< pop a frontier entry, compute row base
  Cycle scan_cycles = 2;      ///< load edge target, compute owner
  Cycle visit_cycles = 2;     ///< distance check at the owner
  Cycle update_cycles = 2;    ///< distance store + frontier append
};

/// Distance value of an unreached vertex.
inline constexpr Word kBfsUnreached = 0xFFFFFFFFu;

class BfsApp final : public Workload {
 public:
  BfsApp(Machine& machine, BfsParams params);

  /// Generates the graph, loads PE memories, spawns h workers per PE
  /// and configures the barrier. Call once, before machine.run().
  void setup();

  const BfsParams& params() const { return params_; }

  /// Gathers the distance array across PEs (valid after run()).
  std::vector<Word> gather_dist() const;

  /// Host-side reference BFS over the same adjacency.
  std::vector<Word> host_reference() const;

  bool verify() const override;
  void contribute(MachineReport& report) const override;

  std::uint32_t levels() const { return level_; }
  std::uint64_t remote_visits() const { return remote_visits_; }

  LocalAddr adj_addr(Word u_local, std::uint32_t edge) const;
  LocalAddr dist_addr(Word v_local) const;
  LocalAddr frontier_addr(std::uint32_t parity, std::uint64_t slot) const;

 private:
  friend rt::ThreadBody bfs_worker(BfsApp* app, rt::ThreadApi api,
                                   Word thread_index);
  friend rt::ThreadBody bfs_visit(BfsApp* app, rt::ThreadApi api,
                                  Word v_local);

  /// The atomic visit step, run on the owner PE with no suspension
  /// between the distance check and the frontier append. Returns true
  /// when the vertex was newly discovered.
  bool visit(proc::Memory& mem, ProcId owner, Word v_local);

  std::uint64_t per_proc_vertices() const;

  /// Per-PE frontier fill counts (the frontier contents live in PE
  /// memory; only the counts are host-side control state).
  struct PerProc {
    std::uint64_t cur = 0;
    std::uint64_t next = 0;
  };

  Machine& machine_;
  BfsParams params_;
  std::vector<Word> adjacency_;  ///< host mirror: n * degree edge targets
  std::vector<PerProc> state_;
  std::uint64_t inflight_ = 0;   ///< visit invocations issued, not yet run
  std::uint32_t level_ = 0;
  std::uint32_t parity_ = 0;     ///< frontier ping-pong
  std::uint64_t remote_visits_ = 0;
  std::uint64_t edges_scanned_ = 0;
  std::uint64_t reached_ = 1;    ///< discovered vertices (root included)
  std::uint64_t peak_frontier_ = 0;
  std::uint32_t worker_entry_ = 0;
  std::uint32_t visit_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody bfs_worker(BfsApp* app, rt::ThreadApi api, Word thread_index);
rt::ThreadBody bfs_visit(BfsApp* app, rt::ThreadApi api, Word v_local);

/// Registers the "bfs" spec (called once by Registry::instance()).
class Registry;
void register_bfs_workload(Registry& registry);

}  // namespace emx::workloads
