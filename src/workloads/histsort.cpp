#include "workloads/histsort.hpp"

#include <algorithm>

#include "apps/distribution.hpp"
#include "common/rng.hpp"
#include "core/instrumentation.hpp"
#include "runtime/barrier.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {

namespace {
constexpr LocalAddr kKeysBase = rt::kReservedWords;

Cycle sort_charge(Cycle per_comparison, std::uint64_t count) {
  // n log2(n) comparisons, log rounded up; zero for empty buckets.
  std::uint64_t lg = 0;
  while ((1ull << lg) < count) ++lg;
  return per_comparison * count * lg;
}
}  // namespace

HistsortApp::HistsortApp(Machine& machine, HistsortParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(params_.n % P == 0, "blocked distribution requires P | n");
  state_.resize(P);
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return histsort_worker(this, api, arg);
      });
  append_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return histsort_append(this, api, arg);
      });
}

std::uint64_t HistsortApp::per_proc_keys() const {
  return params_.n / machine_.config().proc_count;
}

ProcId HistsortApp::bucket_owner(Word key) const {
  const std::uint64_t P = machine_.config().proc_count;
  return static_cast<ProcId>(static_cast<std::uint64_t>(key) * P /
                             kHistsortKeyRange);
}

LocalAddr HistsortApp::key_addr(std::uint64_t k) const {
  return kKeysBase + static_cast<LocalAddr>(k);
}

LocalAddr HistsortApp::bucket_addr(std::uint64_t slot) const {
  return kKeysBase + static_cast<LocalAddr>(per_proc_keys() + slot);
}

void HistsortApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_keys();

  Rng& rng = machine_.streams().stream("workload.histsort", params_.seed);
  keys_.resize(params_.n);
  for (auto& key : keys_) {
    key = static_cast<Word>(rng.bounded(kHistsortKeyRange));
  }
  // The generator knows every key, so each PE's exact bucket size is
  // known up front — the bucket region is sized to it, not to a worst
  // case, and overfill is a hard error instead of a corruption.
  for (const Word key : keys_) ++state_[bucket_owner(key)].expected;
  for (ProcId p = 0; p < P; ++p) {
    EMX_CHECK(kKeysBase + m + state_[p].expected <=
                  machine_.config().memory_words,
              "histsort bucket does not fit in per-PE memory");
  }

  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      mem.write(key_addr(k), keys_[static_cast<std::uint64_t>(p) * m + k]);
    }
  }

  machine_.configure_barrier(params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

void HistsortApp::append(proc::Memory& mem, ProcId owner, Word key) {
  auto& st = state_[owner];
  EMX_DCHECK(st.fill < st.expected, "histsort bucket overfill");
  mem.write(bucket_addr(st.fill), key);
  ++st.fill;
}

rt::ThreadBody histsort_worker(HistsortApp* app, rt::ThreadApi api,
                               Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint64_t m = app->per_proc_keys();
  const apps::ThreadChunk chunk = apps::thread_chunk(m, h, t);
  auto& mem = api.memory();

  // --- scatter: append every key to its bucket owner, fire-and-forget ---
  for (std::uint64_t k = chunk.lo; k < chunk.hi; ++k) {
    co_await api.compute(app->params_.scan_cycles);
    const Word key = mem.read(app->key_addr(k));
    const ProcId owner = app->bucket_owner(key);
    if (owner == me) {
      co_await api.compute(app->params_.append_cycles);
      app->append(mem, me, key);
      ++app->local_appends_;
    } else {
      ++app->inflight_;
      ++app->remote_appends_;
      co_await api.spawn(owner, app->append_entry_, key);
    }
  }

  // --- exchange completion: barrier, drain in-flight appends, barrier ---
  co_await api.iteration_barrier();
  if (me == 0 && t == 0) {
    while (app->inflight_ != 0) co_await api.yield();
  }
  co_await api.iteration_barrier();

  // --- local sort of the complete bucket (one thread per PE) ---
  if (t == 0) {
    const std::uint64_t count = app->state_[me].fill;
    if (count > 1) {
      std::vector<Word> bucket(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        bucket[i] = mem.read(app->bucket_addr(i));
      }
      std::sort(bucket.begin(), bucket.end());
      for (std::uint64_t i = 0; i < count; ++i) {
        mem.write(app->bucket_addr(i), bucket[i]);
      }
      co_await api.compute(sort_charge(app->params_.sort_cycles, count));
    }
  }
  co_return;
}

rt::ThreadBody histsort_append(HistsortApp* app, rt::ThreadApi api,
                               Word key) {
  co_await api.compute(app->params_.append_cycles);
  app->append(api.memory(), api.proc(), key);
  --app->inflight_;
  co_return;
}

std::vector<Word> HistsortApp::gather_sorted() const {
  const std::uint32_t P = machine_.config().proc_count;
  std::vector<Word> out;
  out.reserve(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint64_t i = 0; i < state_[p].fill; ++i) {
      out.push_back(mem.read(bucket_addr(i)));
    }
  }
  return out;
}

std::vector<Word> HistsortApp::host_reference() const {
  std::vector<Word> sorted = keys_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool HistsortApp::verify() const {
  return gather_sorted() == host_reference();
}

void HistsortApp::contribute(MachineReport& report) const {
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
  for (const auto& st : state_) {
    lo = std::min(lo, st.expected);
    hi = std::max(hi, st.expected);
  }
  report.app_metrics.push_back(
      {"histsort.local_appends", std::to_string(local_appends_)});
  report.app_metrics.push_back(
      {"histsort.remote_appends", std::to_string(remote_appends_)});
  report.app_metrics.push_back({"histsort.min_bucket", std::to_string(lo)});
  report.app_metrics.push_back({"histsort.max_bucket", std::to_string(hi)});
}

void register_histsort_workload(Registry& registry) {
  Spec spec;
  spec.name = "histsort";
  spec.description =
      "async-BSP bucketed integer sort with one-sided remote bucket "
      "appends";
  spec.default_size_per_proc = 512;
  spec.default_threads = 4;
  spec.metrics_component = "sim";
  // Same drain pattern as bfs: the scatter phase polls the host-side
  // inflight_ counter that remote-append threads decrement — a
  // zero-latency cross-PE channel. Pin to the sequential loop.
  spec.window_safe = false;
  spec.build = [](Machine& machine, const Params& params)
      -> std::unique_ptr<Workload> {
    HistsortParams hp;
    hp.n = params.size_per_proc * machine.config().proc_count;
    hp.threads = params.threads;
    hp.seed = params.seed;
    auto app = std::make_unique<HistsortApp>(machine, hp);
    app->setup();
    return app;
  };
  registry.add(std::move(spec));
}

}  // namespace emx::workloads
