#include "workloads/registry.hpp"

#include "common/assert.hpp"
#include "core/machine.hpp"
#include "workloads/bfs.hpp"
#include "workloads/histsort.hpp"
#include "workloads/ptrchase.hpp"
#include "workloads/spmv.hpp"

namespace emx::workloads {

void register_paper_workloads(Registry& registry);  // builtin.cpp

Registry& Registry::instance() {
  static Registry registry;
  // One-time builtin registration by explicit call: the plugins live in
  // a static library, so relying on their static initializers would let
  // the linker drop any plugin no test happens to reference.
  static const bool builtins_registered = [] {
    register_paper_workloads(registry);
    register_bfs_workload(registry);
    register_spmv_workload(registry);
    register_ptrchase_workload(registry);
    register_histsort_workload(registry);
    return true;
  }();
  (void)builtins_registered;
  return registry;
}

void Registry::add(Spec spec) {
  EMX_CHECK(!spec.name.empty(), "workload spec with an empty name");
  EMX_CHECK(spec.build != nullptr,
            "workload '" + spec.name + "' registered without a builder");
  EMX_CHECK(find(spec.name) == nullptr,
            "workload '" + spec.name + "' registered twice");
  specs_.push_back(std::move(spec));
}

const Spec* Registry::find(const std::string& name) const {
  for (const Spec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string Registry::name_list(const char* separator) const {
  std::string out;
  for (const Spec& s : specs_) {
    if (!out.empty()) out += separator;
    out += s.name;
  }
  return out;
}

Registrar::Registrar(Spec spec) { Registry::instance().add(std::move(spec)); }

std::string unknown_app_message(const std::string& app) {
  return "unknown app '" + app +
         "' (known apps: " + Registry::instance().name_list() + ")";
}

std::unique_ptr<Workload> build(Machine& machine, const std::string& app,
                                const Params& params, std::string& error) {
  const Spec* spec = Registry::instance().find(app);
  if (spec == nullptr) {
    error = unknown_app_message(app);
    return nullptr;
  }
  // Metrics-contribution tripwire: the component this workload reports
  // against must exist in the machine's *sealed* registry. A plugin
  // naming a unit registered after assert_covers() (or never) panics
  // here, at build time, instead of silently reporting against nothing.
  (void)machine.sealed_component(spec->metrics_component);
  return spec->build(machine, params);
}

}  // namespace emx::workloads
