#include "workloads/spmv.hpp"

#include <bit>

#include "apps/distribution.hpp"
#include "common/rng.hpp"
#include "core/instrumentation.hpp"
#include "runtime/barrier.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {

namespace {
constexpr LocalAddr kBase = rt::kReservedWords;
}  // namespace

SpmvApp::SpmvApp(Machine& machine, SpmvParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  EMX_CHECK(params_.row_nnz >= 1, "need at least one nonzero per row");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(params_.n % P == 0, "blocked distribution requires P | n");
  const std::uint64_t m = per_proc_rows();
  // Layout: COL[m*nnz], VAL[m*nnz], X[m], Y[m].
  const std::uint64_t words = m * (2ull * params_.row_nnz + 2);
  EMX_CHECK(kBase + words <= machine_.config().memory_words,
            "spmv block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return spmv_worker(this, api, arg);
      });
  counters_.resize(P);
}

std::uint64_t SpmvApp::per_proc_rows() const {
  return params_.n / machine_.config().proc_count;
}

LocalAddr SpmvApp::col_addr(Word row_local, std::uint32_t j) const {
  return kBase +
         static_cast<LocalAddr>(static_cast<std::uint64_t>(row_local) *
                                    params_.row_nnz +
                                j);
}

LocalAddr SpmvApp::val_addr(Word row_local, std::uint32_t j) const {
  const std::uint64_t m = per_proc_rows();
  return kBase +
         static_cast<LocalAddr>(m * params_.row_nnz +
                                static_cast<std::uint64_t>(row_local) *
                                    params_.row_nnz +
                                j);
}

LocalAddr SpmvApp::x_addr(Word k_local) const {
  const std::uint64_t m = per_proc_rows();
  return kBase + static_cast<LocalAddr>(2 * m * params_.row_nnz + k_local);
}

LocalAddr SpmvApp::y_addr(Word row_local) const {
  const std::uint64_t m = per_proc_rows();
  return kBase + static_cast<LocalAddr>(2 * m * params_.row_nnz + m + row_local);
}

void SpmvApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_rows();

  // Integer-valued data keeps every f32 row sum exact (header comment),
  // so verification is bitwise regardless of accumulation order.
  Rng& rng = machine_.streams().stream("workload.spmv", params_.seed);
  cols_.resize(params_.n * params_.row_nnz);
  vals_.resize(params_.n * params_.row_nnz);
  x_.resize(params_.n);
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    cols_[i] = static_cast<Word>(rng.bounded(params_.n));
    vals_[i] = static_cast<float>(1 + rng.bounded(16));
  }
  for (auto& v : x_) v = static_cast<float>(1 + rng.bounded(256));

  const apps::BlockDist dist(params_.n, P);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      const std::uint64_t g = dist.global_index(p, k);
      for (std::uint32_t j = 0; j < params_.row_nnz; ++j) {
        mem.write(col_addr(static_cast<Word>(k), j),
                  cols_[g * params_.row_nnz + j]);
        mem.write_f32(val_addr(static_cast<Word>(k), j),
                      vals_[g * params_.row_nnz + j]);
      }
      mem.write_f32(x_addr(static_cast<Word>(k)), x_[g]);
      mem.write_f32(y_addr(static_cast<Word>(k)), 0.0f);
    }
  }

  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

rt::ThreadBody spmv_worker(SpmvApp* app, rt::ThreadApi api,
                           Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint64_t m = app->per_proc_rows();
  const std::uint32_t nnz = app->params_.row_nnz;
  const apps::ThreadChunk chunk = apps::thread_chunk(m, h, t);
  auto& mem = api.memory();

  struct RemoteTerm {
    float coeff;
    rt::GlobalAddr addr;
  };
  std::vector<RemoteTerm> pending;
  pending.reserve(nnz);

  for (std::uint64_t r = chunk.lo; r < chunk.hi; ++r) {
    const auto row = static_cast<Word>(r);
    co_await api.overhead(app->params_.row_addr_cycles);
    float acc = 0.0f;
    pending.clear();
    for (std::uint32_t j = 0; j < nnz; ++j) {
      co_await api.compute(app->params_.gather_cycles);
      const Word col = mem.read(app->col_addr(row, j));
      const float coeff = mem.read_f32(app->val_addr(row, j));
      const auto owner = static_cast<ProcId>(col / m);
      const auto k_local = static_cast<Word>(col % m);
      if (owner == me) {
        acc += coeff * mem.read_f32(app->x_addr(k_local));
        ++app->counters_[me].local_gathers;
      } else {
        pending.push_back(
            {coeff, rt::GlobalAddr{owner, app->x_addr(k_local)}});
        ++app->counters_[me].remote_gathers;
      }
    }

    // Drain remote gathers pairwise through the Matching Unit: one
    // suspension covers two reply packets (paper §2.2 direct matching).
    std::size_t i = 0;
    while (i + 1 < pending.size()) {
      co_await api.overhead(app->params_.pair_addr_cycles);
      const auto [w0, w1] = co_await api.remote_read_pair(
          pending[i].addr, pending[i + 1].addr);
      acc += pending[i].coeff * std::bit_cast<float>(w0);
      acc += pending[i + 1].coeff * std::bit_cast<float>(w1);
      ++app->counters_[me].pair_reads;
      i += 2;
    }
    if (i < pending.size()) {
      co_await api.overhead(app->params_.pair_addr_cycles);
      const Word w = co_await api.remote_read(pending[i].addr);
      acc += pending[i].coeff * std::bit_cast<float>(w);
    }

    co_await api.compute(app->params_.mac_cycles * nnz);
    mem.write_f32(app->y_addr(row), acc);
  }
  co_return;
}

std::vector<float> SpmvApp::gather_y() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_rows();
  std::vector<float> out;
  out.reserve(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      out.push_back(mem.read_f32(y_addr(static_cast<Word>(k))));
    }
  }
  return out;
}

std::vector<float> SpmvApp::host_reference() const {
  std::vector<float> y(params_.n, 0.0f);
  for (std::uint64_t r = 0; r < params_.n; ++r) {
    float acc = 0.0f;
    for (std::uint32_t j = 0; j < params_.row_nnz; ++j) {
      const std::uint64_t i = r * params_.row_nnz + j;
      acc += vals_[i] * x_[cols_[i]];
    }
    y[r] = acc;
  }
  return y;
}

bool SpmvApp::verify() const { return gather_y() == host_reference(); }

void SpmvApp::contribute(MachineReport& report) const {
  PeCounters total;
  for (const PeCounters& c : counters_) {
    total.local_gathers += c.local_gathers;
    total.remote_gathers += c.remote_gathers;
    total.pair_reads += c.pair_reads;
  }
  report.app_metrics.push_back(
      {"spmv.local_gathers", std::to_string(total.local_gathers)});
  report.app_metrics.push_back(
      {"spmv.remote_gathers", std::to_string(total.remote_gathers)});
  report.app_metrics.push_back(
      {"spmv.pair_reads", std::to_string(total.pair_reads)});
}

void register_spmv_workload(Registry& registry) {
  Spec spec;
  spec.name = "spmv";
  spec.description =
      "CSR sparse matrix-vector multiply with pairwise-matched remote "
      "row gathers";
  spec.default_size_per_proc = 512;
  spec.default_threads = 4;
  spec.metrics_component = "sim";
  spec.build = [](Machine& machine, const Params& params)
      -> std::unique_ptr<Workload> {
    SpmvParams sp;
    sp.n = params.size_per_proc * machine.config().proc_count;
    sp.threads = params.threads;
    sp.seed = params.seed;
    auto app = std::make_unique<SpmvApp>(machine, sp);
    app->setup();
    return app;
  };
  registry.add(std::move(spec));
}

}  // namespace emx::workloads
