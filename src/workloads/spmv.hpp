// Sparse matrix-vector multiply (CSR) with remote row gathers — the
// irregular-memory workload from the Emu Chick suite (PAPERS.md).
//
// y = A * x with A a uniform-nnz-per-row CSR matrix whose column
// indices are drawn uniformly at random: rows and both vectors are
// block-distributed, so each row's gather touches a data-dependent set
// of x elements, most of them remote. Remote gathers go out as
// split-phase reads, batched pairwise through the Matching Unit's
// two-operand direct matching (one suspension, two reply packets) —
// the EM-X idiom the paper's Figure 5 measures.
//
// Verification is bitwise: matrix values and x entries are small
// integers stored as f32, so every product (≤ 16·256) and every row
// sum (≤ nnz·4096 < 2^24) is exactly representable and the sum order
// cannot matter. The simulated result must equal the host reference
// bit for bit, under any thread count and any fault plan.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "workloads/workload.hpp"

namespace emx::workloads {

struct SpmvParams {
  std::uint64_t n = 2048;     ///< rows == x length (P | n)
  std::uint32_t threads = 4;  ///< h, threads per PE
  std::uint64_t seed = 0x5EED0006;
  std::uint32_t row_nnz = 8;  ///< nonzeros per row (uniform CSR)

  // Instruction budgets (cycles).
  Cycle row_addr_cycles = 2;   ///< row pointer arithmetic
  Cycle gather_cycles = 2;     ///< column load + owner computation
  Cycle pair_addr_cycles = 4;  ///< two-operand gather address setup
  Cycle mac_cycles = 2;        ///< one multiply-accumulate
};

class SpmvApp final : public Workload {
 public:
  SpmvApp(Machine& machine, SpmvParams params);

  void setup();

  const SpmvParams& params() const { return params_; }

  /// Gathers y across PEs (valid after run()).
  std::vector<float> gather_y() const;

  /// Host reference y, computed exactly over the same matrix and x.
  std::vector<float> host_reference() const;

  bool verify() const override;
  void contribute(MachineReport& report) const override;

  LocalAddr col_addr(Word row_local, std::uint32_t j) const;
  LocalAddr val_addr(Word row_local, std::uint32_t j) const;
  LocalAddr x_addr(Word k_local) const;
  LocalAddr y_addr(Word row_local) const;

 private:
  friend rt::ThreadBody spmv_worker(SpmvApp* app, rt::ThreadApi api,
                                    Word thread_index);

  std::uint64_t per_proc_rows() const;

  Machine& machine_;
  SpmvParams params_;
  std::vector<Word> cols_;    ///< host mirror: n * row_nnz column indices
  std::vector<float> vals_;   ///< host mirror: n * row_nnz values
  std::vector<float> x_;      ///< host mirror: the input vector
  /// Metric counters, one cell per PE: a cell is only ever touched by
  /// threads running on that PE, so the cells stay race-free when the
  /// parallel engine runs PEs on different host threads.
  struct PeCounters {
    std::uint64_t local_gathers = 0;
    std::uint64_t remote_gathers = 0;
    std::uint64_t pair_reads = 0;
  };
  std::vector<PeCounters> counters_;
  std::uint32_t worker_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody spmv_worker(SpmvApp* app, rt::ThreadApi api, Word thread_index);

class Registry;
void register_spmv_workload(Registry& registry);

}  // namespace emx::workloads
