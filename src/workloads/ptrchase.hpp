// Independent pointer-chasing streams — the pure latency-tolerance
// microbenchmark (the Emu Chick suite's pointer-chase kernel).
//
// The n ring nodes form one global cycle (a Sattolo permutation) spread
// block-wise over the PEs; each node's word holds the id of the next.
// Every thread chases `hops` links from its own start node: a serial
// dependency chain where nothing can be prefetched and every remote hop
// is one split-phase read with no other work to hide it — per-thread
// progress is pure latency, so tolerance can only come from the OTHER
// h-1 threads on the PE. Measured overlap efficiency is the paper's
// multithreading claim in its rawest form.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "workloads/workload.hpp"

namespace emx::workloads {

struct PtrchaseParams {
  std::uint64_t n = 1024;     ///< ring nodes (P | n)
  std::uint32_t threads = 4;  ///< h, streams per PE
  std::uint64_t seed = 0x5EED0007;
  std::uint32_t hops = 256;   ///< links chased per stream

  // Instruction budgets (cycles).
  Cycle hop_cycles = 2;  ///< next-pointer address computation
};

class PtrchaseApp final : public Workload {
 public:
  PtrchaseApp(Machine& machine, PtrchaseParams params);

  void setup();

  const PtrchaseParams& params() const { return params_; }

  /// The start node of stream (pe, t).
  Word start_node(ProcId pe, std::uint32_t t) const;

  /// Gathers every stream's final node (valid after run()).
  std::vector<Word> gather_finals() const;

  /// Host reference: the same chases over the ring mirror.
  std::vector<Word> host_reference() const;

  bool verify() const override;
  void contribute(MachineReport& report) const override;

  LocalAddr ring_addr(Word node_local) const;
  LocalAddr result_addr(std::uint32_t t) const;

 private:
  friend rt::ThreadBody ptrchase_worker(PtrchaseApp* app, rt::ThreadApi api,
                                        Word thread_index);

  std::uint64_t per_proc_nodes() const;

  Machine& machine_;
  PtrchaseParams params_;
  std::vector<Word> ring_;  ///< host mirror: node -> next node
  /// Metric counters, one cell per PE: a cell is only ever touched by
  /// threads running on that PE, so the cells stay race-free when the
  /// parallel engine runs PEs on different host threads.
  struct PeCounters {
    std::uint64_t local_hops = 0;
    std::uint64_t remote_hops = 0;
  };
  std::vector<PeCounters> counters_;
  std::uint32_t worker_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody ptrchase_worker(PtrchaseApp* app, rt::ThreadApi api,
                               Word thread_index);

class Registry;
void register_ptrchase_workload(Registry& registry);

}  // namespace emx::workloads
