#include "workloads/ptrchase.hpp"

#include "common/rng.hpp"
#include "core/instrumentation.hpp"
#include "runtime/barrier.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {

namespace {
constexpr LocalAddr kRingBase = rt::kReservedWords;
}  // namespace

PtrchaseApp::PtrchaseApp(Machine& machine, PtrchaseParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(params_.n % P == 0, "blocked distribution requires P | n");
  EMX_CHECK(params_.n >= 2, "need at least two ring nodes");
  const std::uint64_t m = per_proc_nodes();
  const std::uint64_t words = m + params_.threads;
  EMX_CHECK(kRingBase + words <= machine_.config().memory_words,
            "ring block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return ptrchase_worker(this, api, arg);
      });
  counters_.resize(P);
}

std::uint64_t PtrchaseApp::per_proc_nodes() const {
  return params_.n / machine_.config().proc_count;
}

LocalAddr PtrchaseApp::ring_addr(Word node_local) const {
  return kRingBase + static_cast<LocalAddr>(node_local);
}

LocalAddr PtrchaseApp::result_addr(std::uint32_t t) const {
  return kRingBase + static_cast<LocalAddr>(per_proc_nodes() + t);
}

Word PtrchaseApp::start_node(ProcId pe, std::uint32_t t) const {
  // Spread the P*h stream starts evenly around the node space so the
  // chains interleave across PEs from hop one.
  const std::uint64_t streams =
      static_cast<std::uint64_t>(machine_.config().proc_count) *
      params_.threads;
  const std::uint64_t stream =
      static_cast<std::uint64_t>(pe) * params_.threads + t;
  return static_cast<Word>(stream * params_.n / streams);
}

void PtrchaseApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_nodes();

  // Sattolo's algorithm: a uniformly random single n-cycle, so every
  // chase keeps moving and never parks in a short loop.
  Rng& rng = machine_.streams().stream("workload.ptrchase", params_.seed);
  std::vector<Word> perm(params_.n);
  for (std::uint64_t i = 0; i < params_.n; ++i) {
    perm[i] = static_cast<Word>(i);
  }
  for (std::uint64_t i = params_.n - 1; i > 0; --i) {
    const std::uint64_t j = rng.bounded(i);
    const Word tmp = perm[i];
    perm[i] = perm[j];
    perm[j] = tmp;
  }
  ring_.assign(params_.n, 0);
  for (std::uint64_t i = 0; i < params_.n; ++i) {
    ring_[perm[i]] = perm[(i + 1) % params_.n];
  }

  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      mem.write(ring_addr(static_cast<Word>(k)),
                ring_[static_cast<std::uint64_t>(p) * m + k]);
    }
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      mem.write(result_addr(t), 0);
    }
  }

  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

rt::ThreadBody ptrchase_worker(PtrchaseApp* app, rt::ThreadApi api,
                               Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const ProcId me = api.proc();
  const std::uint64_t m = app->per_proc_nodes();
  auto& mem = api.memory();

  Word cur = app->start_node(me, t);
  for (std::uint32_t hop = 0; hop < app->params_.hops; ++hop) {
    co_await api.compute(app->params_.hop_cycles);
    const auto owner = static_cast<ProcId>(cur / m);
    const auto node_local = static_cast<Word>(cur % m);
    if (owner == me) {
      cur = mem.read(app->ring_addr(node_local));
      ++app->counters_[me].local_hops;
    } else {
      cur = co_await api.remote_read(
          rt::GlobalAddr{owner, app->ring_addr(node_local)});
      ++app->counters_[me].remote_hops;
    }
  }
  mem.write(app->result_addr(t), cur);
  co_return;
}

std::vector<Word> PtrchaseApp::gather_finals() const {
  const std::uint32_t P = machine_.config().proc_count;
  std::vector<Word> out;
  out.reserve(static_cast<std::uint64_t>(P) * params_.threads);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      out.push_back(mem.read(result_addr(t)));
    }
  }
  return out;
}

std::vector<Word> PtrchaseApp::host_reference() const {
  const std::uint32_t P = machine_.config().proc_count;
  std::vector<Word> out;
  out.reserve(static_cast<std::uint64_t>(P) * params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      Word cur = start_node(p, t);
      for (std::uint32_t hop = 0; hop < params_.hops; ++hop) {
        cur = ring_[cur];
      }
      out.push_back(cur);
    }
  }
  return out;
}

bool PtrchaseApp::verify() const {
  return gather_finals() == host_reference();
}

void PtrchaseApp::contribute(MachineReport& report) const {
  PeCounters total;
  for (const PeCounters& c : counters_) {
    total.local_hops += c.local_hops;
    total.remote_hops += c.remote_hops;
  }
  report.app_metrics.push_back(
      {"ptrchase.local_hops", std::to_string(total.local_hops)});
  report.app_metrics.push_back(
      {"ptrchase.remote_hops", std::to_string(total.remote_hops)});
}

void register_ptrchase_workload(Registry& registry) {
  Spec spec;
  spec.name = "ptrchase";
  spec.description =
      "independent pointer-chasing streams over a global ring (pure "
      "latency-tolerance microbenchmark)";
  spec.default_size_per_proc = 256;
  spec.default_threads = 4;
  spec.metrics_component = "sim";
  spec.build = [](Machine& machine, const Params& params)
      -> std::unique_ptr<Workload> {
    PtrchaseParams pp;
    pp.n = params.size_per_proc * machine.config().proc_count;
    pp.threads = params.threads;
    pp.seed = params.seed;
    auto app = std::make_unique<PtrchaseApp>(machine, pp);
    app->setup();
    return app;
  };
  registry.add(std::move(spec));
}

}  // namespace emx::workloads
