#include "workloads/bfs.hpp"

#include <algorithm>
#include <deque>

#include "apps/distribution.hpp"
#include "common/rng.hpp"
#include "core/instrumentation.hpp"
#include "runtime/barrier.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {

namespace {
constexpr LocalAddr kAdjBase = rt::kReservedWords;
}  // namespace

BfsApp::BfsApp(Machine& machine, BfsParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  EMX_CHECK(params_.degree >= 1, "need at least one edge per vertex");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(params_.n % P == 0, "blocked distribution requires P | n");
  EMX_CHECK(params_.root < params_.n, "root vertex out of range");
  const std::uint64_t m = per_proc_vertices();
  // Layout: adjacency rows, then dist, then the two frontier buffers.
  // Each vertex enters a frontier at most once, so capacity m suffices.
  const std::uint64_t words = m * params_.degree + 3 * m;
  EMX_CHECK(kAdjBase + words <= machine_.config().memory_words,
            "bfs graph block does not fit in per-PE memory");
  state_.resize(P);
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return bfs_worker(this, api, arg);
      });
  visit_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return bfs_visit(this, api, arg);
      });
}

std::uint64_t BfsApp::per_proc_vertices() const {
  return params_.n / machine_.config().proc_count;
}

LocalAddr BfsApp::adj_addr(Word u_local, std::uint32_t edge) const {
  return kAdjBase +
         static_cast<LocalAddr>(static_cast<std::uint64_t>(u_local) *
                                    params_.degree +
                                edge);
}

LocalAddr BfsApp::dist_addr(Word v_local) const {
  const std::uint64_t m = per_proc_vertices();
  return kAdjBase + static_cast<LocalAddr>(m * params_.degree + v_local);
}

LocalAddr BfsApp::frontier_addr(std::uint32_t parity,
                                std::uint64_t slot) const {
  const std::uint64_t m = per_proc_vertices();
  return kAdjBase +
         static_cast<LocalAddr>(m * params_.degree + m + parity * m + slot);
}

void BfsApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_vertices();

  // Uniform-degree digraph: every vertex gets `degree` random targets
  // (self-loops and parallel edges allowed — they only add visit checks).
  Rng& rng = machine_.streams().stream("workload.bfs", params_.seed);
  adjacency_.resize(params_.n * params_.degree);
  for (auto& target : adjacency_) {
    target = static_cast<Word>(rng.bounded(params_.n));
  }

  const apps::BlockDist dist(params_.n, P);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      const std::uint64_t u = dist.global_index(p, k);
      for (std::uint32_t e = 0; e < params_.degree; ++e) {
        mem.write(adj_addr(static_cast<Word>(k), e),
                  adjacency_[u * params_.degree + e]);
      }
      mem.write(dist_addr(static_cast<Word>(k)), kBfsUnreached);
    }
  }

  const ProcId root_owner = dist.owner(params_.root);
  const Word root_local = static_cast<Word>(dist.local_index(params_.root));
  machine_.memory(root_owner).write(dist_addr(root_local), 0);
  machine_.memory(root_owner).write(frontier_addr(0, 0), root_local);
  state_[root_owner].cur = 1;
  peak_frontier_ = 1;

  machine_.configure_barrier(params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

bool BfsApp::visit(proc::Memory& mem, ProcId owner, Word v_local) {
  if (mem.read(dist_addr(v_local)) != kBfsUnreached) return false;
  mem.write(dist_addr(v_local), level_ + 1);
  auto& st = state_[owner];
  mem.write(frontier_addr(parity_ ^ 1u, st.next), v_local);
  ++st.next;
  ++reached_;
  return true;
}

rt::ThreadBody bfs_worker(BfsApp* app, rt::ThreadApi api, Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint64_t m = app->per_proc_vertices();
  const std::uint32_t degree = app->params_.degree;
  auto& mem = api.memory();

  for (;;) {
    // --- scan this PE's slice of the current frontier ---
    const std::uint64_t count = app->state_[me].cur;
    const std::uint32_t parity = app->parity_;
    const apps::ThreadChunk chunk = apps::thread_chunk(count, h, t);
    for (std::uint64_t slot = chunk.lo; slot < chunk.hi; ++slot) {
      co_await api.overhead(app->params_.frontier_cycles);
      const Word u_local = mem.read(app->frontier_addr(parity, slot));
      app->edges_scanned_ += degree;
      for (std::uint32_t e = 0; e < degree; ++e) {
        co_await api.compute(app->params_.scan_cycles);
        const Word v = mem.read(app->adj_addr(u_local, e));
        const auto owner = static_cast<ProcId>(v / m);
        const auto v_local = static_cast<Word>(v % m);
        if (owner == me) {
          co_await api.compute(app->params_.visit_cycles);
          if (app->visit(mem, me, v_local)) {
            co_await api.compute(app->params_.update_cycles);
          }
        } else {
          // One-sided remote visit: the spawned thread runs the
          // check/update on the owner's EXU. Count it in flight until it
          // retires so the drain below can prove the level is complete.
          ++app->inflight_;
          ++app->remote_visits_;
          co_await api.spawn(owner, app->visit_entry_, v_local);
        }
      }
    }

    // --- level synchronisation: barrier, drain, barrier, publish ---
    co_await api.iteration_barrier();
    if (me == 0 && t == 0) {
      // Invoke packets may still be in the network (retransmit timers
      // under --fault-*); one designated thread polls them down to zero.
      while (app->inflight_ != 0) co_await api.yield();
    }
    co_await api.iteration_barrier();
    if (t == 0) {
      auto& st = app->state_[me];
      st.cur = st.next;
      st.next = 0;
    }
    if (me == 0 && t == 0) {
      app->parity_ ^= 1u;
      ++app->level_;
    }
    co_await api.iteration_barrier();

    std::uint64_t total = 0;
    for (const auto& st : app->state_) total += st.cur;
    if (me == 0 && t == 0) {
      app->peak_frontier_ = std::max(app->peak_frontier_, total);
    }
    if (total == 0) break;
  }
  co_return;
}

rt::ThreadBody bfs_visit(BfsApp* app, rt::ThreadApi api, Word v_local) {
  co_await api.compute(app->params_.visit_cycles);
  // Check + update + append with no suspension in between: the visit is
  // atomic on this PE, so two visits of the same vertex cannot both
  // append it (frontier capacity relies on at most one append each).
  const bool discovered = app->visit(api.memory(), api.proc(), v_local);
  if (discovered) {
    co_await api.compute(app->params_.update_cycles);
  }
  --app->inflight_;
  co_return;
}

std::vector<Word> BfsApp::gather_dist() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_vertices();
  std::vector<Word> out;
  out.reserve(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      out.push_back(mem.read(dist_addr(static_cast<Word>(k))));
    }
  }
  return out;
}

std::vector<Word> BfsApp::host_reference() const {
  std::vector<Word> dist(params_.n, kBfsUnreached);
  std::deque<Word> queue;
  dist[params_.root] = 0;
  queue.push_back(params_.root);
  while (!queue.empty()) {
    const Word u = queue.front();
    queue.pop_front();
    for (std::uint32_t e = 0; e < params_.degree; ++e) {
      const Word v = adjacency_[static_cast<std::uint64_t>(u) *
                                    params_.degree +
                                e];
      if (dist[v] == kBfsUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool BfsApp::verify() const { return gather_dist() == host_reference(); }

void BfsApp::contribute(MachineReport& report) const {
  report.app_metrics.push_back({"bfs.levels", std::to_string(level_)});
  report.app_metrics.push_back({"bfs.reached", std::to_string(reached_)});
  report.app_metrics.push_back(
      {"bfs.edges_scanned", std::to_string(edges_scanned_)});
  report.app_metrics.push_back(
      {"bfs.remote_visits", std::to_string(remote_visits_)});
  report.app_metrics.push_back(
      {"bfs.peak_frontier", std::to_string(peak_frontier_)});
}

void register_bfs_workload(Registry& registry) {
  Spec spec;
  spec.name = "bfs";
  spec.description =
      "level-synchronous BFS over a seeded uniform-degree graph "
      "(one-sided remote visits)";
  spec.default_size_per_proc = 512;
  spec.default_threads = 4;
  spec.metrics_component = "sim";
  // The level-drain protocol polls the host-side inflight_ counter that
  // remote-visit threads on other PEs decrement — a zero-latency cross-PE
  // channel the window engine cannot order. Pin to the sequential loop.
  spec.window_safe = false;
  spec.build = [](Machine& machine, const Params& params)
      -> std::unique_ptr<Workload> {
    BfsParams bp;
    bp.n = params.size_per_proc * machine.config().proc_count;
    bp.threads = params.threads;
    bp.seed = params.seed;
    auto app = std::make_unique<BfsApp>(machine, bp);
    app->setup();
    return app;
  };
  registry.add(std::move(spec));
}

}  // namespace emx::workloads
