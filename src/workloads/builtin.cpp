// Registry adapters for the four paper applications (src/apps/). Each
// builder constructs its app exactly as the snapshot runner historically
// did — same parameter mapping, same RNG stream draws — so the frozen
// default-size cycle counts carried over unchanged when the runner moved
// onto the registry.
#include <memory>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "apps/fft_cyclic.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {

namespace {

class SortWorkload final : public Workload {
 public:
  SortWorkload(Machine& machine, const Params& params) {
    app_ = std::make_unique<apps::BitonicSortApp>(
        machine,
        apps::BitonicParams{.n = params.size_per_proc *
                                 machine.config().proc_count,
                            .threads = params.threads,
                            .seed = params.seed,
                            .use_block_reads = params.block_reads});
    app_->setup();
  }
  bool verify() const override { return app_->verify(); }

 private:
  std::unique_ptr<apps::BitonicSortApp> app_;
};

class FftWorkload final : public Workload {
 public:
  FftWorkload(Machine& machine, const Params& params) {
    app_ = std::make_unique<apps::FftApp>(
        machine,
        apps::FftParams{.n = params.size_per_proc *
                             machine.config().proc_count,
                        .threads = params.threads,
                        .seed = params.seed,
                        .include_local_phase = params.local_phase});
    app_->setup();
  }
  // Without the local phase only the first log P iterations ran — no
  // complete transform exists to check (matches the paper's benches).
  bool verifiable() const override {
    return app_->params().include_local_phase;
  }
  bool verify() const override { return app_->verify_error() < 1e-5; }

 private:
  std::unique_ptr<apps::FftApp> app_;
};

class CyclicFftWorkload final : public Workload {
 public:
  CyclicFftWorkload(Machine& machine, const Params& params) {
    app_ = std::make_unique<apps::CyclicFftApp>(
        machine,
        apps::CyclicFftParams{.n = params.size_per_proc *
                                   machine.config().proc_count,
                              .threads = params.threads,
                              .seed = params.seed});
    app_->setup();
  }
  bool verify() const override { return app_->verify_error() < 1e-5; }

 private:
  std::unique_ptr<apps::CyclicFftApp> app_;
};

class JacobiWorkload final : public Workload {
 public:
  JacobiWorkload(Machine& machine, const Params& params) {
    app_ = std::make_unique<apps::JacobiApp>(
        machine,
        apps::JacobiParams{.n = params.size_per_proc *
                                machine.config().proc_count,
                           .threads = params.threads,
                           .iterations = params.iterations,
                           .seed = params.seed});
    app_->setup();
  }
  bool verify() const override { return app_->verify_error() < 1e-6; }

 private:
  std::unique_ptr<apps::JacobiApp> app_;
};

template <typename W>
std::unique_ptr<Workload> make_workload(Machine& machine,
                                        const Params& params) {
  return std::make_unique<W>(machine, params);
}

}  // namespace

void register_paper_workloads(Registry& registry) {
  {
    Spec spec;
    spec.name = "sort";
    spec.description =
        "multithreaded bitonic sort, blocked distribution (paper §3.1)";
    spec.build = make_workload<SortWorkload>;
    registry.add(std::move(spec));
  }
  {
    Spec spec;
    spec.name = "fft";
    spec.description =
        "blocked-distribution complex FFT, communication phase first "
        "(paper §3.2)";
    spec.build = make_workload<FftWorkload>;
    registry.add(std::move(spec));
  }
  {
    Spec spec;
    spec.name = "fft-cyclic";
    spec.description =
        "cyclic-distribution FFT, communication phase last (JPDC'97 "
        "companion study)";
    spec.build = make_workload<CyclicFftWorkload>;
    registry.add(std::move(spec));
  }
  {
    Spec spec;
    spec.name = "jacobi";
    spec.description =
        "1-D Jacobi relaxation with halo exchange (communication-light "
        "extreme)";
    spec.build = make_workload<JacobiWorkload>;
    registry.add(std::move(spec));
  }
}

}  // namespace emx::workloads
