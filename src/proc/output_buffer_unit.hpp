// Output Buffer Unit (OBU).
//
// Separates the EXU (and the by-pass DMA) from the network: packets
// generated locally are buffered (8 deep on chip) and released to the
// switch unit. In the simulator the release is a scheduled handoff
// `obu_cycles` after generation; the network's injection-port model
// enforces the 1-packet-per-2-cycles wire rate, so the OBU tracks
// occupancy statistics and ordering only.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "network/network_iface.hpp"
#include "sim/sim_context.hpp"

namespace emx::proc {

class ChannelHooks;  // defined in proc/channel_hooks.hpp

class OutputBufferUnit {
 public:
  OutputBufferUnit(sim::SimContext& sim, net::Network& network, Cycle obu_cycles)
      : sim_(sim), network_(network), obu_cycles_(obu_cycles) {}

  /// Accepts a packet from the EXU or the by-pass DMA at sim.now() and
  /// injects it into the network obu_cycles later. Packets from one PE
  /// are injected in acceptance order (the event queue preserves
  /// same-time insertion order), which upholds non-overtaking end-to-end.
  /// On faulted runs the ReliableChannel stamps sequence numbers here —
  /// the OBU is the single choke point every outbound packet crosses.
  void send(const net::Packet& packet);

  /// Arms sequence-number stamping (fault-injection runs only).
  void set_channel(ChannelHooks* channel) { channel_ = channel; }

  std::uint64_t packets_sent() const { return sent_; }

  /// Serializes counters plus every in-flight (accepted, not yet
  /// released) packet with its pool slot. Slot assignment comes from the
  /// free-list, which evolves deterministically with the run history, so
  /// two identical runs serialize identically.
  void save(ser::Serializer& s) const {
    s.u64(sent_);
    std::uint32_t live = 0;
    for (const Outgoing& o : pool_)
      if (o.in_use) ++live;
    s.u32(live);
    for (std::uint32_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].in_use) continue;
      s.u32(i);
      pool_[i].packet.save(s);
    }
  }

 private:
  struct Outgoing {
    net::Packet packet;
    std::uint32_t next_free = 0;
    bool in_use = false;
  };
  static void release_event(void* ctx, std::uint64_t idx, std::uint64_t);

  sim::SimContext& sim_;
  net::Network& network_;
  Cycle obu_cycles_;
  ChannelHooks* channel_ = nullptr;
  std::vector<Outgoing> pool_;
  std::uint32_t free_head_ = 0xFFFFFFFFu;
  std::uint64_t sent_ = 0;
};

}  // namespace emx::proc
