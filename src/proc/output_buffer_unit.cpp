#include "proc/output_buffer_unit.hpp"

#include "proc/channel_hooks.hpp"

namespace emx::proc {

void OutputBufferUnit::send(const net::Packet& packet) {
  ++sent_;
  std::uint32_t idx;
  if (free_head_ != 0xFFFFFFFFu) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx].packet = packet;
  pool_[idx].packet.issue_cycle = sim_.now();
  pool_[idx].in_use = true;
  // Sequence stamping happens before the release event is scheduled so
  // the channel's retransmit timer always precedes the packet's own
  // injection in the event order (matching the pre-channel behaviour).
  // A false return means the write fence captured the packet: the channel
  // re-submits it once the blocking writes are ACKed, so this slot is
  // surrendered and the packet never enters the fabric now.
  if (channel_ != nullptr && !channel_->on_obu_send(pool_[idx].packet)) {
    --sent_;
    pool_[idx].in_use = false;
    pool_[idx].next_free = free_head_;
    free_head_ = idx;
    return;
  }
  sim_.schedule(obu_cycles_, &OutputBufferUnit::release_event, this, idx, 0);
}

void OutputBufferUnit::release_event(void* ctx, std::uint64_t idx64, std::uint64_t) {
  auto* self = static_cast<OutputBufferUnit*>(ctx);
  auto idx = static_cast<std::uint32_t>(idx64);
  Outgoing& rec = self->pool_[idx];
  EMX_DCHECK(rec.in_use, "OBU releasing freed slot");
  const net::Packet packet = rec.packet;
  rec.in_use = false;
  rec.next_free = self->free_head_;
  self->free_head_ = idx;
  self->network_.inject(packet);
}

}  // namespace emx::proc
