// The EMC-Y processing element: a single-chip pipelined RISC-style
// processor for fine-grain parallel computing (paper §2.2). Aggregates
// the memory, Output Buffer Unit, by-pass DMA and the thread engine
// (IBU + MU + EXU), and routes arriving packets:
//
//   remote read/write service packets -> by-pass DMA   (no EXU cycles)
//   thread packets (invoke/reply/wake) -> IBU thread FIFO -> MU -> EXU
//
// In EM-4 compatibility mode, read requests are demoted to the thread
// FIFO and serviced on the EXU instead.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "fault/reliability.hpp"
#include "network/network_iface.hpp"
#include "proc/bypass_dma.hpp"
#include "proc/memory.hpp"
#include "proc/output_buffer_unit.hpp"
#include "runtime/scheduler.hpp"
#include "trace/trace.hpp"

namespace emx::proc {

class Emcy {
 public:
  Emcy(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
       net::Network& network, rt::EntryRegistry& registry,
       trace::TraceSink* sink);

  Emcy(const Emcy&) = delete;
  Emcy& operator=(const Emcy&) = delete;

  ProcId proc() const { return proc_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  OutputBufferUnit& obu() { return obu_; }
  BypassDma& dma() { return dma_; }
  rt::ThreadEngine& engine() { return engine_; }
  const rt::ThreadEngine& engine() const { return engine_; }

  /// Delivery point from the network (called at arrival time).
  void accept(const net::Packet& packet);

  std::uint64_t packets_accepted() const { return accepted_; }

  /// Arms the reliability protocol on this PE (fault-injection runs only):
  /// constructs the ReliableChannel and hooks it into the OBU's stamping
  /// choke point, the thread engine's dispatch path and this PE's packet
  /// acceptance path.
  void arm_reliability(sim::SimContext& sim, fault::FaultDomain& domain,
                       trace::TraceSink* sink);

  fault::ReliableChannel* channel() { return channel_.get(); }
  const fault::ReliableChannel* channel() const { return channel_.get(); }

  /// Transient fail-stop outage (FaultKind::kPeOutage): freeze thread
  /// dispatch and flush fabric-origin packets from the IBU. The NIC-side
  /// packet death is modelled by FaultyNetwork; memory survives.
  void begin_outage() { engine_.begin_outage(); }
  void end_outage() { engine_.end_outage(); }

  /// Serializes the whole PE: memory digest, OBU, DMA, thread engine,
  /// and (when armed) the reliability channel ledgers.
  void save(snapshot::Serializer& s) const {
    s.u64(accepted_);
    memory_.save(s);
    obu_.save(s);
    dma_.save(s);
    engine_.save(s);
    s.boolean(channel_ != nullptr);
    if (channel_ != nullptr) channel_->save(s);
  }

 private:
  const MachineConfig& config_;
  ProcId proc_;
  Memory memory_;
  OutputBufferUnit obu_;
  BypassDma dma_;
  rt::ThreadEngine engine_;
  std::unique_ptr<fault::ReliableChannel> channel_;  ///< null on fault-free runs
  std::uint64_t accepted_ = 0;
};

}  // namespace emx::proc
