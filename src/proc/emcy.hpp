// The EMC-Y processing element: a single-chip pipelined RISC-style
// processor for fine-grain parallel computing (paper §2.2). Aggregates
// the memory, Output Buffer Unit, by-pass DMA and the thread engine
// (IBU + MU + EXU), and routes arriving packets:
//
//   remote read/write service packets -> by-pass DMA   (no EXU cycles)
//   thread packets (invoke/reply/wake) -> IBU thread FIFO -> MU -> EXU
//
// In EM-4 compatibility mode, read requests are demoted to the thread
// FIFO and serviced on the EXU instead.
//
// Each PE is a Component ("pe0".."peN"): its snapshot section covers the
// memory digest, OBU, DMA, thread engine and (when armed) the reliable
// channel; its stall description is the per-PE block of the watchdog
// diagnosis; and it contributes one ProcReport to the machine report.
#pragma once

#include <cstdio>

#include "common/component.hpp"
#include "core/config.hpp"
#include "network/network_iface.hpp"
#include "proc/bypass_dma.hpp"
#include "proc/channel_hooks.hpp"
#include "proc/memory.hpp"
#include "proc/output_buffer_unit.hpp"
#include "runtime/scheduler.hpp"
#include "trace/trace.hpp"

namespace emx::proc {

class Emcy final : public Component {
 public:
  Emcy(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
       net::Network& network, rt::EntryRegistry& registry,
       trace::TraceSink* sink);

  Emcy(const Emcy&) = delete;
  Emcy& operator=(const Emcy&) = delete;

  ProcId proc() const { return proc_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  OutputBufferUnit& obu() { return obu_; }
  BypassDma& dma() { return dma_; }
  const BypassDma& dma() const { return dma_; }
  rt::ThreadEngine& engine() { return engine_; }
  const rt::ThreadEngine& engine() const { return engine_; }

  /// Delivery point from the network (called at arrival time). Notes
  /// forward progress with the watchdog: a packet landing at a PE is
  /// progress by definition.
  void accept(const net::Packet& packet);

  /// Delivery-table entry (net::DeliveryEndpoint): lets unchecked runs
  /// route packets from the network straight into accept() with no
  /// intermediate Machine hop.
  static void accept_thunk(void* ctx, const net::Packet& packet) {
    static_cast<Emcy*>(ctx)->accept(packet);
  }

  std::uint64_t packets_accepted() const { return accepted_; }

  /// Attaches the reliability protocol (fault-injection runs only; the
  /// Machine owns the channel): hooks it into the OBU's stamping choke
  /// point, the thread engine's dispatch path and this PE's packet
  /// acceptance path.
  void attach_channel(ChannelHooks* channel) {
    channel_ = channel;
    obu_.set_channel(channel);
    engine_.set_channel(channel);
  }

  ChannelHooks* channel() { return channel_; }
  const ChannelHooks* channel() const { return channel_; }

  /// Transient fail-stop outage (FaultKind::kPeOutage): freeze thread
  /// dispatch and flush fabric-origin packets from the IBU. The NIC-side
  /// packet death is modelled by FaultyNetwork; memory survives.
  void begin_outage() { engine_.begin_outage(); }
  void end_outage() { engine_.end_outage(); }

  // --- Component ---

  const char* component_name() const override { return name_; }

  /// Serializes the whole PE: memory digest, OBU, DMA, thread engine,
  /// and (when armed) the reliability channel ledgers.
  void save_state(ser::Serializer& s) const override {
    s.u64(accepted_);
    memory_.save(s);
    obu_.save(s);
    dma_.save(s);
    engine_.save(s);
    s.boolean(channel_ != nullptr);
    if (channel_ != nullptr) channel_->save(s);
  }

  /// Kept as the historical spelling used by PE-level unit tests.
  void save(ser::Serializer& s) const { save_state(s); }

  void describe_stall(std::string& out, bool quiescent) const override;
  void contribute(MachineReport& report) const override;

 private:
  sim::SimContext& sim_;
  const MachineConfig& config_;
  ProcId proc_;
  char name_[8];  ///< "pe%u" — the stable component/section name
  Memory memory_;
  OutputBufferUnit obu_;
  BypassDma dma_;
  rt::ThreadEngine engine_;
  ChannelHooks* channel_ = nullptr;  ///< null on fault-free runs
  std::uint64_t accepted_ = 0;
};

}  // namespace emx::proc
