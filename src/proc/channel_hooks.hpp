// ChannelHooks: the processor's view of a reliable-transport channel.
//
// The EMC-Y units (OBU stamping choke point, NIC acceptance in Emcy, IBU
// dispatch in the thread engine) call these hooks at the protocol's
// commit points; fault::ReliableChannel implements them. The interface
// lives in proc/ so the processor and runtime layers never include
// src/fault/ headers — on fault-free runs no channel is constructed and
// every call site is a null-checked no-op.
#pragma once

#include <cstdint>
#include <string>

#include "common/serializer.hpp"
#include "network/packet.hpp"

namespace emx::proc {

class ChannelHooks {
 public:
  virtual ~ChannelHooks() = default;

  /// What the receiver should do with an arriving block-read request.
  enum class BlockReadVerdict : std::uint8_t {
    kService,       ///< fresh: run the full service (words + resume)
    kSuppress,      ///< duplicate of a not-yet-serviced copy: do nothing
    kResendResume,  ///< already serviced: re-send only the resuming word
  };

  // --- sender role (OBU choke point, IBU dispatch) ---

  /// Called by the OBU for every packet it releases; may stamp sequence
  /// numbers. Returns false when the write fence captured the packet: the
  /// OBU must drop it — the channel re-sends it itself later.
  virtual bool on_obu_send(net::Packet& packet) = 0;

  /// Called at NIC acceptance for read replies. Returns false when the
  /// reply is a duplicate and must be suppressed.
  virtual bool on_reply_accept(const net::Packet& reply) = 0;

  /// Called when the IBU dispatches a read reply: the request retires.
  virtual void on_reply_dispatched(const net::Packet& reply) = 0;

  /// Called at NIC acceptance for kAck packets.
  virtual void on_ack(const net::Packet& ack) = 0;

  // --- receiver role (NIC acceptance, IBU dispatch) ---

  /// Called at NIC acceptance for sequenced writes and invokes. Returns
  /// false when the message is a duplicate and must not be applied.
  virtual bool accept_msg(const net::Packet& msg) = 0;

  /// Called when the IBU dispatches a sequenced invoke: side effect
  /// committed, the ACK goes out.
  virtual void on_invoke_dispatched(const net::Packet& msg) = 0;

  /// Called at NIC acceptance for block-read requests.
  virtual BlockReadVerdict accept_block_read(const net::Packet& req) = 0;

  /// Called when the block-read service actually launches.
  virtual void on_block_read_serviced(const net::Packet& req) = 0;

  /// Called for every fabric packet flushed from the IBU by a PE outage.
  virtual void on_packet_flushed(const net::Packet& packet) = 0;

  // --- observation (end-of-run checks, diagnosis, reporting) ---

  virtual bool idle() const = 0;
  virtual std::uint64_t outstanding() const = 0;
  /// Appends one line per outstanding request (watchdog diagnosis).
  virtual void append_outstanding(std::string& out) const = 0;
  /// Read-request retransmissions (ProcReport::read_retries).
  virtual std::uint64_t retry_count() const = 0;

  /// Serializes the channel's full state (part of the owning PE's
  /// snapshot section).
  virtual void save(ser::Serializer& s) const = 0;
};

}  // namespace emx::proc
