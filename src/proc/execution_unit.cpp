#include "proc/execution_unit.hpp"

// Accounting-only unit; TU anchors the module in the library.
