// The by-passing direct memory access path — the key EM-X feature.
//
// Remote read/write request packets arriving at the IBU are serviced over
// the IBU -> MCU -> OBU path without consuming Execution Unit cycles
// (paper §2.2). The DMA engine has its own timeline: one request occupies
// it for dma_interval cycles and a serviced read's reply leaves for the
// OBU dma_service cycles after service starts.
//
// A block read request (one of the four EMC-Y send instruction types)
// produces block_len fixed-size reply packets; the first block_len-1 are
// plain remote writes into the requester's buffer and the final one is the
// thread-resuming read reply.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "network/packet.hpp"
#include "proc/memory.hpp"
#include "proc/output_buffer_unit.hpp"
#include "sim/sim_context.hpp"

namespace emx::proc {

struct BypassDmaStats {
  std::uint64_t reads_serviced = 0;
  std::uint64_t writes_serviced = 0;
  std::uint64_t block_reads_serviced = 0;
  std::uint64_t reply_packets = 0;
  Cycle busy_cycles = 0;  ///< cycles the DMA engine was occupied
};

class BypassDma {
 public:
  BypassDma(sim::SimContext& sim, Memory& memory, OutputBufferUnit& obu,
            Cycle service_cycles, Cycle interval_cycles,
            Cycle block_word_cycles = 2)
      : sim_(sim),
        memory_(memory),
        obu_(obu),
        service_cycles_(service_cycles),
        interval_cycles_(interval_cycles),
        block_word_cycles_(block_word_cycles) {}

  /// Accepts a service packet (read request / write / block read request)
  /// at sim.now(). Never touches the EXU.
  void service(const net::Packet& packet);

  /// Re-sends only the resuming word of an already-serviced block read
  /// (duplicate request: the word-writes repair themselves, the resume is
  /// the one stream packet without a retransmit timer of its own).
  void resend_resume(const net::Packet& req);

  const BypassDmaStats& stats() const { return stats_; }

  void save(ser::Serializer& s) const {
    s.u64(engine_free_);
    s.u64(stats_.reads_serviced);
    s.u64(stats_.writes_serviced);
    s.u64(stats_.block_reads_serviced);
    s.u64(stats_.reply_packets);
    s.u64(stats_.busy_cycles);
    std::uint32_t live = 0;
    for (const Job& j : pool_)
      if (j.in_use) ++live;
    s.u32(live);
    for (std::uint32_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].in_use) continue;
      s.u32(i);
      pool_[i].packet.save(s);
    }
  }

 private:
  struct Job {
    net::Packet packet;
    std::uint32_t next_free = 0;
    bool in_use = false;
  };
  static void service_event(void* ctx, std::uint64_t idx, std::uint64_t);
  void schedule_reply(const net::Packet& reply, Cycle when);
  Cycle reserve_engine(Cycle occupancy);

  sim::SimContext& sim_;
  Memory& memory_;
  OutputBufferUnit& obu_;
  Cycle service_cycles_;
  Cycle interval_cycles_;
  Cycle block_word_cycles_;
  Cycle engine_free_ = 0;
  std::vector<Job> pool_;
  std::uint32_t free_head_ = 0xFFFFFFFFu;
  BypassDmaStats stats_;
};

}  // namespace emx::proc
