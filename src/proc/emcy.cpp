#include "proc/emcy.hpp"

namespace emx::proc {

Emcy::Emcy(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
           net::Network& network, rt::EntryRegistry& registry,
           trace::TraceSink* sink)
    : config_(config),
      proc_(proc),
      memory_(config.memory_words),
      obu_(sim, network, config.obu_cycles),
      dma_(sim, memory_, obu_, config.dma_service_cycles,
           config.dma_interval_cycles, config.dma_block_word_cycles),
      engine_(sim, config, proc, memory_, obu_, registry, sink) {}

void Emcy::arm_reliability(sim::SimContext& sim, fault::FaultDomain& domain,
                           trace::TraceSink* sink) {
  retry_ = std::make_unique<fault::RetryAgent>(
      sim, config_.fault, proc_, obu_, engine_.exu(), domain,
      config_.packet_gen_cycles, sink);
  engine_.set_retry_agent(retry_.get());
}

void Emcy::accept(const net::Packet& packet) {
  ++accepted_;
  using net::PacketKind;
  switch (packet.kind) {
    case PacketKind::kRemoteWrite:
      // Writes are always serviced by the IBU->MCU path.
      dma_.service(packet);
      return;
    case PacketKind::kRemoteReadReq:
    case PacketKind::kBlockReadReq:
      if (config_.read_service == ReadServiceMode::kBypassDma) {
        dma_.service(packet);
      } else {
        engine_.enqueue_packet(packet);  // EM-4: consumes EXU cycles
      }
      return;
    case PacketKind::kRemoteReadReply:
    case PacketKind::kBlockReadReply:
      // Reliability protocol: duplicate replies (a retransmitted request
      // that raced its original, or a fabric-duplicated packet) must be
      // suppressed here — a stale reply reaching the MU would trip the
      // pending-tag match.
      if (retry_ != nullptr && !retry_->on_reply(packet)) return;
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kInvoke:
    case PacketKind::kLocalWake:
      engine_.enqueue_packet(packet);
      return;
  }
}

}  // namespace emx::proc
