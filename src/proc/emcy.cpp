#include "proc/emcy.hpp"

namespace emx::proc {

Emcy::Emcy(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
           net::Network& network, rt::EntryRegistry& registry,
           trace::TraceSink* sink)
    : config_(config),
      proc_(proc),
      memory_(config.memory_words),
      obu_(sim, network, config.obu_cycles),
      dma_(sim, memory_, obu_, config.dma_service_cycles,
           config.dma_interval_cycles, config.dma_block_word_cycles),
      engine_(sim, config, proc, memory_, obu_, registry, sink) {}

void Emcy::arm_reliability(sim::SimContext& sim, fault::FaultDomain& domain,
                           trace::TraceSink* sink) {
  channel_ = std::make_unique<fault::ReliableChannel>(
      sim, config_.fault, proc_, obu_, engine_.exu(), domain,
      config_.packet_gen_cycles, sink);
  obu_.set_channel(channel_.get());
  engine_.set_channel(channel_.get());
}

void Emcy::accept(const net::Packet& packet) {
  ++accepted_;
  using net::PacketKind;
  switch (packet.kind) {
    case PacketKind::kRemoteWrite:
      // Exactly-once: a retransmitted write whose original already
      // committed must not commit twice.
      if (channel_ != nullptr && !channel_->accept_msg(packet)) return;
      // Writes are always serviced by the IBU->MCU path.
      dma_.service(packet);
      return;
    case PacketKind::kRemoteReadReq:
    case PacketKind::kBlockReadReq:
      // Scalar reads keep the idempotent fast path: re-servicing one just
      // re-sends a data word the requester's channel dedups. Block reads
      // do NOT — their service streams side-effecting writes, so the
      // channel dedups the request itself and a duplicate at most
      // re-fetches the resuming word.
      if (packet.kind == PacketKind::kBlockReadReq && channel_ != nullptr) {
        switch (channel_->accept_block_read(packet)) {
          case fault::ReliableChannel::BlockReadVerdict::kService:
            break;
          case fault::ReliableChannel::BlockReadVerdict::kSuppress:
            return;
          case fault::ReliableChannel::BlockReadVerdict::kResendResume:
            dma_.resend_resume(packet);
            return;
        }
      }
      if (config_.read_service == ReadServiceMode::kBypassDma) {
        dma_.service(packet);
        // The full stream is on its way: later duplicates only re-resume.
        if (packet.kind == PacketKind::kBlockReadReq && channel_ != nullptr)
          channel_->on_block_read_serviced(packet);
      } else {
        engine_.enqueue_packet(packet);  // EM-4: applied at service dispatch
      }
      return;
    case PacketKind::kRemoteReadReply:
    case PacketKind::kBlockReadReply:
      // Reliability protocol: duplicate replies (a retransmitted request
      // that raced its original, or a fabric-duplicated packet) must be
      // suppressed here — a stale reply reaching the MU would trip the
      // pending-tag match.
      if (channel_ != nullptr && !channel_->on_reply_accept(packet)) return;
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kInvoke:
      // Exactly-once: a duplicate invoke would allocate a second frame
      // and run the thread body twice (a duplicated barrier join would
      // silently over-count the barrier).
      if (channel_ != nullptr && !channel_->accept_msg(packet)) return;
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kLocalWake:
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kAck:
      // NIC-level: retires the sender-side entry; never reaches the IBU.
      if (channel_ != nullptr) channel_->on_ack(packet);
      return;
  }
}

}  // namespace emx::proc
