#include "proc/emcy.hpp"

#include "core/instrumentation.hpp"

namespace emx::proc {

Emcy::Emcy(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
           net::Network& network, rt::EntryRegistry& registry,
           trace::TraceSink* sink)
    : sim_(sim),
      config_(config),
      proc_(proc),
      memory_(config.memory_words),
      obu_(sim, network, config.obu_cycles),
      dma_(sim, memory_, obu_, config.dma_service_cycles,
           config.dma_interval_cycles, config.dma_block_word_cycles),
      engine_(sim, config, proc, memory_, obu_, registry, sink) {
  std::snprintf(name_, sizeof name_, "pe%u", proc_);
}

void Emcy::accept(const net::Packet& packet) {
  sim_.note_progress();
  ++accepted_;
  using net::PacketKind;
  switch (packet.kind) {
    case PacketKind::kRemoteWrite:
      // Exactly-once: a retransmitted write whose original already
      // committed must not commit twice.
      if (channel_ != nullptr && !channel_->accept_msg(packet)) return;
      // Writes are always serviced by the IBU->MCU path.
      dma_.service(packet);
      return;
    case PacketKind::kRemoteReadReq:
    case PacketKind::kBlockReadReq:
      // Scalar reads keep the idempotent fast path: re-servicing one just
      // re-sends a data word the requester's channel dedups. Block reads
      // do NOT — their service streams side-effecting writes, so the
      // channel dedups the request itself and a duplicate at most
      // re-fetches the resuming word.
      if (packet.kind == PacketKind::kBlockReadReq && channel_ != nullptr) {
        switch (channel_->accept_block_read(packet)) {
          case ChannelHooks::BlockReadVerdict::kService:
            break;
          case ChannelHooks::BlockReadVerdict::kSuppress:
            return;
          case ChannelHooks::BlockReadVerdict::kResendResume:
            dma_.resend_resume(packet);
            return;
        }
      }
      if (config_.read_service == ReadServiceMode::kBypassDma) {
        dma_.service(packet);
        // The full stream is on its way: later duplicates only re-resume.
        if (packet.kind == PacketKind::kBlockReadReq && channel_ != nullptr)
          channel_->on_block_read_serviced(packet);
      } else {
        engine_.enqueue_packet(packet);  // EM-4: applied at service dispatch
      }
      return;
    case PacketKind::kRemoteReadReply:
    case PacketKind::kBlockReadReply:
      // Reliability protocol: duplicate replies (a retransmitted request
      // that raced its original, or a fabric-duplicated packet) must be
      // suppressed here — a stale reply reaching the MU would trip the
      // pending-tag match.
      if (channel_ != nullptr && !channel_->on_reply_accept(packet)) return;
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kInvoke:
      // Exactly-once: a duplicate invoke would allocate a second frame
      // and run the thread body twice (a duplicated barrier join would
      // silently over-count the barrier).
      if (channel_ != nullptr && !channel_->accept_msg(packet)) return;
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kLocalWake:
      engine_.enqueue_packet(packet);
      return;
    case PacketKind::kAck:
      // NIC-level: retires the sender-side entry; never reaches the IBU.
      if (channel_ != nullptr) channel_->on_ack(packet);
      return;
  }
}

void Emcy::describe_stall(std::string& out, bool /*quiescent*/) const {
  const bool channel_idle = channel_ == nullptr || channel_->idle();
  if (engine_.frames().live() == 0 && channel_idle && engine_.ibu().empty())
    return;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "  P%u: live_threads=%llu ibu_depth=%llu outstanding=%llu\n",
                proc_,
                static_cast<unsigned long long>(engine_.frames().live()),
                static_cast<unsigned long long>(engine_.ibu().size()),
                static_cast<unsigned long long>(
                    channel_ != nullptr ? channel_->outstanding() : 0));
  out += buf;
  engine_.frames().append_live(out);
  if (channel_ != nullptr) channel_->append_outstanding(out);
}

void Emcy::contribute(MachineReport& report) const {
  // Machine::report() sets total_cycles (the end-of-run cycle) before the
  // contribute pass, so idle time can be computed against it here.
  const auto& exu = engine_.exu();
  ProcReport p;
  p.compute = exu.bucket(CycleBucket::kCompute);
  p.overhead = exu.bucket(CycleBucket::kOverhead);
  p.switching = exu.bucket(CycleBucket::kSwitch);
  p.read_service = exu.bucket(CycleBucket::kReadService);
  p.comm = exu.idle_cycles(report.total_cycles);
  p.switches = engine_.switches();
  p.reads_issued = engine_.reads_issued();
  p.packets_accepted = accepted_;
  p.dma_reads = dma_.stats().reads_serviced;
  p.dma_block_reads = dma_.stats().block_reads_serviced;
  p.dma_writes = dma_.stats().writes_serviced;
  if (channel_ != nullptr) p.read_retries = channel_->retry_count();
  report.procs.push_back(p);
}

}  // namespace emx::proc
