#include "proc/matching_unit.hpp"

// Counter-only unit; TU anchors the module in the library.
