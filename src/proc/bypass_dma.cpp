#include "proc/bypass_dma.hpp"

#include "common/assert.hpp"
#include "runtime/global_addr.hpp"

namespace emx::proc {

// Memory effects commit when the request is accepted; the DMA engine's
// occupancy and the reply departure are modelled on its own timeline.
// This relaxation is safe because application phases are separated by
// barriers (no PE writes a region while a peer reads it), and it
// guarantees that by the time a reply resumes a thread, every earlier
// packet's memory effect is visible.

Cycle BypassDma::reserve_engine(Cycle occupancy) {
  const Cycle start = engine_free_ > sim_.now() ? engine_free_ : sim_.now();
  engine_free_ = start + occupancy;
  stats_.busy_cycles += occupancy;
  return start;
}

void BypassDma::schedule_reply(const net::Packet& reply, Cycle when) {
  std::uint32_t idx;
  if (free_head_ != 0xFFFFFFFFu) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx].packet = reply;
  pool_[idx].in_use = true;
  ++stats_.reply_packets;
  sim_.schedule_at(when, &BypassDma::service_event, this, idx, 0);
}

void BypassDma::service_event(void* ctx, std::uint64_t idx64, std::uint64_t) {
  auto* self = static_cast<BypassDma*>(ctx);
  auto idx = static_cast<std::uint32_t>(idx64);
  Job& job = self->pool_[idx];
  EMX_DCHECK(job.in_use, "DMA releasing freed job");
  const net::Packet reply = job.packet;
  job.in_use = false;
  job.next_free = self->free_head_;
  self->free_head_ = idx;
  self->obu_.send(reply);
}

void BypassDma::resend_resume(const net::Packet& req) {
  sim_.note_progress();
  EMX_DCHECK(req.kind == net::PacketKind::kBlockReadReq,
             "resume re-send for a non-block-read packet");
  const Cycle start = reserve_engine(interval_cycles_);
  const rt::GlobalAddr base = rt::unpack(req.addr);
  const rt::GlobalAddr dest = rt::unpack(req.data);
  const std::uint32_t last = req.block_len - 1;
  net::Packet reply;
  reply.kind = net::PacketKind::kBlockReadReply;
  reply.src = req.dst;
  reply.dst = req.src;
  reply.cont_thread = req.cont_thread;
  reply.cont_tag = req.cont_tag;
  reply.cont_slot = req.cont_slot;
  reply.priority = req.priority;
  reply.data = memory_.read(base.addr + last);
  reply.addr = rt::pack(dest + last);
  reply.req_seq = req.req_seq;
  schedule_reply(reply, start + service_cycles_);
}

void BypassDma::service(const net::Packet& packet) {
  // A packet being serviced is forward progress for the watchdog: memory
  // changes or a reply departs.
  sim_.note_progress();
  using net::PacketKind;
  switch (packet.kind) {
    case PacketKind::kRemoteWrite: {
      ++stats_.writes_serviced;
      reserve_engine(interval_cycles_);
      const rt::GlobalAddr target = rt::unpack(packet.addr);
      EMX_DCHECK(target.proc == packet.dst, "write routed to wrong PE");
      memory_.write(target.addr, packet.data);
      return;
    }
    case PacketKind::kRemoteReadReq: {
      ++stats_.reads_serviced;
      const Cycle start = reserve_engine(interval_cycles_);
      const rt::GlobalAddr target = rt::unpack(packet.addr);
      EMX_DCHECK(target.proc == packet.dst, "read routed to wrong PE");
      net::Packet reply;
      reply.kind = PacketKind::kRemoteReadReply;
      reply.src = packet.dst;
      reply.dst = packet.src;
      reply.addr = packet.data;  // continuation travels back
      reply.data = memory_.read(target.addr);
      reply.cont_thread = packet.cont_thread;
      reply.cont_tag = packet.cont_tag;
      reply.cont_slot = packet.cont_slot;
      reply.priority = packet.priority;
      reply.req_seq = packet.req_seq;  // reply echoes the request sequence
      schedule_reply(reply, start + service_cycles_);
      return;
    }
    case PacketKind::kBlockReadReq: {
      ++stats_.block_reads_serviced;
      // One request's worth of setup, then the words stream at wire rate.
      const Cycle start = reserve_engine(
          interval_cycles_ + (packet.block_len - 1) * block_word_cycles_);
      const rt::GlobalAddr base = rt::unpack(packet.addr);
      EMX_DCHECK(base.proc == packet.dst, "block read routed to wrong PE");
      // The data word carries the destination buffer base on the requester.
      const rt::GlobalAddr dest = rt::unpack(packet.data);
      for (std::uint32_t i = 0; i < packet.block_len; ++i) {
        net::Packet reply;
        reply.src = packet.dst;
        reply.dst = packet.src;
        reply.cont_thread = packet.cont_thread;
        reply.cont_tag = packet.cont_tag;
        reply.cont_slot = packet.cont_slot;
        reply.priority = packet.priority;
        reply.data = memory_.read(base.addr + i);
        reply.addr = rt::pack(dest + i);
        // All words but the last are plain stores into the requester's
        // buffer; the final word additionally resumes the waiting thread.
        reply.kind = (i + 1 < packet.block_len) ? PacketKind::kRemoteWrite
                                                : PacketKind::kBlockReadReply;
        // Only the resuming word is a tracked reply; it echoes the seq so
        // the requester can retire (or suppress a duplicate of) the read.
        if (reply.kind == PacketKind::kBlockReadReply)
          reply.req_seq = packet.req_seq;
        schedule_reply(reply, start + service_cycles_ + i * block_word_cycles_);
      }
      return;
    }
    case PacketKind::kRemoteReadReply:
    case PacketKind::kBlockReadReply:
    case PacketKind::kInvoke:
    case PacketKind::kLocalWake:
    case PacketKind::kAck:
      EMX_UNREACHABLE("packet kind not serviced by DMA");
  }
}

}  // namespace emx::proc
