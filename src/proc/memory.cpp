#include "proc/memory.hpp"

// Header-only hot path; this TU pins the vtable-free class into the
// library so downstream link sets stay uniform.
