#include "proc/input_buffer_unit.hpp"

// All-inline; TU exists to keep one object per module in the library.
