// Matching Unit (MU): direct matching and thread dispatch.
//
// When the EXU is free, the MU fetches the first packet from the IBU FIFO
// and performs the five dispatch actions (obtain frame base, load mate
// data, fetch template address, fetch first instruction, signal the EXU —
// paper §2.2). The simulator charges mu_dispatch cycles for the sequence
// and keeps dispatch statistics; the actual thread resumption/invocation
// logic lives in the runtime scheduler that owns the coroutines.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::proc {

class MatchingUnit {
 public:
  explicit MatchingUnit(Cycle dispatch_cycles) : dispatch_cycles_(dispatch_cycles) {}

  Cycle dispatch_cycles() const { return dispatch_cycles_; }

  void note_dispatch() { ++dispatches_; }
  void note_invoke() { ++invocations_; }
  void note_resume() { ++resumptions_; }
  void note_match() { ++matches_; }

  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t resumptions() const { return resumptions_; }
  std::uint64_t matches() const { return matches_; }

  void save(ser::Serializer& s) const {
    s.u64(dispatches_);
    s.u64(invocations_);
    s.u64(resumptions_);
    s.u64(matches_);
  }

 private:
  Cycle dispatch_cycles_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t invocations_ = 0;
  std::uint64_t resumptions_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace emx::proc
