// Input Buffer Unit (IBU).
//
// Receives packets from the switch unit into two priority levels of
// on-chip FIFO (8 packets each) that spill to an on-memory buffer when
// full and restore automatically (paper §2.2). The IBU operates
// independently of the EXU: remote read/write service packets are peeled
// off to the by-pass DMA before ever entering the thread queue; thread
// invocation and resumption packets queue here for the Matching Unit.
#pragma once

#include <cstdint>

#include "common/ring_buffer.hpp"
#include "network/packet.hpp"

namespace emx::proc {

class InputBufferUnit {
 public:
  explicit InputBufferUnit(std::size_t on_chip_depth)
      : high_(on_chip_depth), normal_(on_chip_depth) {}

  bool empty() const { return high_.empty() && normal_.empty(); }
  std::size_t size() const { return high_.size() + normal_.size(); }

  void push(const net::Packet& packet) {
    ++received_;
    if (packet.priority == net::PacketPriority::kHigh) {
      high_.push(packet);
    } else {
      normal_.push(packet);
    }
  }

  /// FIFO within a level; the high-priority level drains first.
  net::Packet pop() {
    EMX_DCHECK(!empty(), "IBU pop while empty");
    return high_.empty() ? normal_.pop() : high_.pop();
  }

  std::uint64_t total_received() const { return received_; }
  std::size_t peak_depth() const {
    return high_.peak_size() + normal_.peak_size();
  }
  std::size_t spilled_now() const { return high_.spilled() + normal_.spilled(); }

  void save(ser::Serializer& s) const {
    s.u64(received_);
    for (const auto* fifo : {&high_, &normal_}) {
      s.u32(static_cast<std::uint32_t>(fifo->size()));
      for (std::size_t i = 0; i < fifo->size(); ++i) fifo->at(i).save(s);
    }
  }

 private:
  SpillingFifo<net::Packet> high_;
  SpillingFifo<net::Packet> normal_;
  std::uint64_t received_ = 0;
};

}  // namespace emx::proc
