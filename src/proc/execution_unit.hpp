// Execution Unit (EXU) cycle accounting.
//
// The EXU is a register-based RISC pipeline executing one thread at a
// time, non-preemptively. The simulator does not interpret individual
// instructions; it charges cycle spans to buckets that mirror the paper's
// Figure-8 decomposition:
//   computation — application instructions (1 clock each),
//   overhead    — packet-generation instructions (the paper measured this
//                 with a null loop),
//   switching   — register saving + Matching-Unit dispatch + barrier
//                 re-check instructions,
//   read service— EM-4 compatibility mode only: servicing remote reads on
//                 the EXU as 1-instruction threads.
// Cycles in no bucket while the machine still runs are idle = exposed
// communication time.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::proc {

enum class CycleBucket : std::uint8_t {
  kCompute = 0,
  kOverhead = 1,
  kSwitch = 2,
  kReadService = 3,
};
inline constexpr std::size_t kBucketCount = 4;

class ExecutionUnit {
 public:
  bool busy() const { return busy_; }

  /// Marks the EXU busy; closes the current idle span.
  void begin_busy(Cycle now) {
    EMX_DCHECK(!busy_, "begin_busy while busy");
    busy_ = true;
    EMX_DCHECK(now >= idle_since_, "time went backwards");
    idle_cycles_ += now - idle_since_;
  }

  /// Marks the EXU free; opens an idle span.
  void end_busy(Cycle now) {
    EMX_DCHECK(busy_, "end_busy while idle");
    busy_ = false;
    idle_since_ = now;
  }

  void charge(CycleBucket bucket, Cycle cycles) {
    buckets_[static_cast<std::size_t>(bucket)] += cycles;
  }

  Cycle bucket(CycleBucket b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  Cycle busy_total() const {
    Cycle t = 0;
    for (auto c : buckets_) t += c;
    return t;
  }

  /// Idle cycles observed so far; callers finalize with the run-end time.
  Cycle idle_cycles(Cycle end_time) const {
    Cycle idle = idle_cycles_;
    if (!busy_ && end_time > idle_since_) idle += end_time - idle_since_;
    return idle;
  }

  void save(ser::Serializer& s) const {
    s.boolean(busy_);
    s.u64(idle_since_);
    s.u64(idle_cycles_);
    for (Cycle c : buckets_) s.u64(c);
  }

 private:
  bool busy_ = false;
  Cycle idle_since_ = 0;
  Cycle idle_cycles_ = 0;
  std::array<Cycle, kBucketCount> buckets_ = {0, 0, 0, 0};
};

}  // namespace emx::proc
