// Per-PE local memory: 4 MB of one-level static RAM on the EMC-Y,
// word-addressed (32-bit words). The simulator stores real data here so
// application results can be verified, not just timed.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::proc {

class Memory {
 public:
  /// Observer for every store, attributed or not (analysis runs only):
  /// fn-pointer style to keep the unprobed fast path a single null test.
  using WriteProbe = void (*)(void* ctx, LocalAddr addr, std::uint32_t words);

  explicit Memory(std::size_t words) : words_(words, 0) {}

  std::size_t size() const { return words_.size(); }

  void set_write_probe(WriteProbe probe, void* ctx) {
    probe_ = probe;
    probe_ctx_ = ctx;
  }

  Word read(LocalAddr addr) const {
    EMX_DCHECK(addr < words_.size(), "memory read out of range");
    return words_[addr];
  }

  void write(LocalAddr addr, Word value) {
    EMX_DCHECK(addr < words_.size(), "memory write out of range");
    words_[addr] = value;
    if (probe_ != nullptr) probe_(probe_ctx_, addr, 1);
  }

  /// Single-precision floats are stored as their bit pattern (the EMC-Y is
  /// a 32-bit machine with single-precision FP units).
  float read_f32(LocalAddr addr) const { return std::bit_cast<float>(read(addr)); }
  void write_f32(LocalAddr addr, float value) {
    write(addr, std::bit_cast<Word>(value));
  }

  void fill(LocalAddr base, const Word* data, std::size_t count) {
    EMX_CHECK(base + count <= words_.size(), "memory fill out of range");
    for (std::size_t i = 0; i < count; ++i) words_[base + i] = data[i];
    if (probe_ != nullptr) probe_(probe_ctx_, base, static_cast<std::uint32_t>(count));
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0u); }

  /// Serializes size + content CRC rather than the raw words: at 4 MB per
  /// PE a full image would dominate the checkpoint, and the
  /// restore-by-replay design only needs to *verify* memory, for which
  /// the digest is as strong a witness as the bytes.
  void save(ser::Serializer& s) const {
    s.u64(words_.size());
    s.u32(ser::crc32(words_.data(), words_.size() * sizeof(Word)));
  }

 private:
  std::vector<Word> words_;
  WriteProbe probe_ = nullptr;
  void* probe_ctx_ = nullptr;
};

}  // namespace emx::proc
