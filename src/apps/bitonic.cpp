#include "apps/bitonic.hpp"

#include <algorithm>

#include "apps/distribution.hpp"
#include "apps/verify.hpp"
#include "common/rng.hpp"
#include "runtime/barrier.hpp"

namespace emx::apps {

namespace {
// Per-PE memory layout (word addresses): two ping-pong data buffers and
// the mate buffer holding elements read from the pair processor.
constexpr LocalAddr buf_base(std::uint64_t m, std::uint32_t parity) {
  return rt::kReservedWords + static_cast<LocalAddr>(parity * m);
}
constexpr LocalAddr mate_base(std::uint64_t m) {
  return rt::kReservedWords + static_cast<LocalAddr>(2 * m);
}
}  // namespace

BitonicSortApp::BitonicSortApp(Machine& machine, BitonicParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(is_power_of_two(P), "bitonic sorting requires power-of-two P");
  EMX_CHECK(params_.n % P == 0 && params_.n >= P,
            "blocked distribution requires P | n");
  const std::uint64_t m = per_proc_elems();
  EMX_CHECK(mate_base(m) + m <= machine_.config().memory_words,
            "data block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return bitonic_worker(this, api, arg);
      });
  final_parity_ = bitonic_merge_steps(P) % 2;
}

std::uint64_t BitonicSortApp::per_proc_elems() const {
  return params_.n / machine_.config().proc_count;
}

LocalAddr BitonicSortApp::buf_addr(std::uint32_t parity, std::uint64_t k) const {
  return buf_base(per_proc_elems(), parity) + static_cast<LocalAddr>(k);
}

void BitonicSortApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_elems();

  Rng& rng = machine_.streams().stream("workload.sort", params_.seed);
  input_.resize(params_.n);
  for (auto& w : input_) w = rng.next_u32();

  const BlockDist dist(params_.n, P);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      mem.write(buf_addr(0, k), input_[dist.global_index(p, k)]);
    }
  }

  state_.assign(P, PerProc{});
  for (auto& st : state_) st.gate.reset(params_.threads);

  machine_.configure_barrier(params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

std::uint64_t BitonicSortApp::merge_chunk(ProcId me, bool keep_low,
                                          std::uint32_t cur,
                                          std::uint64_t mate_limit,
                                          bool final_thread) {
  PerProc& st = state_[me];
  auto& mem = machine_.memory(me);
  const std::uint64_t m = per_proc_elems();
  const LocalAddr own = buf_base(m, cur);
  const LocalAddr out = buf_base(m, cur ^ 1u);
  const LocalAddr mate = mate_base(m);

  // For the keep-high direction the merge runs from the top of both lists
  // downward and fills the output from the top, so the result buffer is
  // ascending either way.
  auto own_at = [&](std::uint64_t taken) {
    return mem.read(own + static_cast<LocalAddr>(keep_low ? taken : m - 1 - taken));
  };
  auto mate_at = [&](std::uint64_t taken) {
    return mem.read(mate + static_cast<LocalAddr>(keep_low ? taken : m - 1 - taken));
  };
  auto out_write = [&](std::uint64_t idx, Word v) {
    mem.write(out + static_cast<LocalAddr>(keep_low ? idx : m - 1 - idx), v);
  };

  std::uint64_t produced_here = 0;
  while (st.produced < m && st.mate_taken < mate_limit) {
    bool take_own = false;
    if (st.own_taken < m) {
      const Word a = own_at(st.own_taken);
      const Word b = mate_at(st.mate_taken);
      take_own = keep_low ? (a <= b) : (a >= b);
    }
    const Word v = take_own ? own_at(st.own_taken++) : mate_at(st.mate_taken++);
    out_write(st.produced++, v);
    ++produced_here;
  }
  if (final_thread) {
    // The tail of the output always comes from our own list once every
    // needed mate element has been consumed.
    while (st.produced < m) {
      out_write(st.produced++, own_at(st.own_taken++));
      ++produced_here;
    }
  }
  return produced_here;
}

rt::ThreadBody bitonic_worker(BitonicSortApp* app, rt::ThreadApi api,
                              Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint32_t P = api.config().proc_count;
  const std::uint64_t m = app->per_proc_elems();
  BitonicSortApp::PerProc& st = app->state_[me];
  const ThreadChunk chunk = thread_chunk(m, h, t);

  // ---- local sort step (thread 0 sorts the block) ----
  if (t == 0) {
    auto& mem = api.memory();
    std::vector<Word> block(m);
    for (std::uint64_t k = 0; k < m; ++k) block[k] = mem.read(app->buf_addr(0, k));
    std::sort(block.begin(), block.end());
    for (std::uint64_t k = 0; k < m; ++k) mem.write(app->buf_addr(0, k), block[k]);
    const unsigned lg = m > 1 ? ilog2(m) + (is_power_of_two(m) ? 0 : 1) : 1;
    co_await api.compute(app->params_.local_sort_cycles_per_key * m * lg);
  }
  co_await api.iteration_barrier();

  // ---- log P merge stages, stage i has i+1 steps ----
  std::uint32_t cur = 0;
  const unsigned logp = ilog2(P);
  for (unsigned i = 0; i < logp; ++i) {
    for (int j = static_cast<int>(i); j >= 0; --j) {
      const ProcId partner = me ^ (1u << static_cast<unsigned>(j));
      const bool keep_low = bitonic_keep_low(me, i, static_cast<unsigned>(j));

      // Communication phase: issue this thread's share of the n/P reads.
      if (app->params_.use_block_reads) {
        // One block-read send per chunk: the chunk's mate indices are
        // contiguous in either direction (keep-high chunks sit at the
        // top of the mate list).
        if (chunk.size() > 0) {
          const std::uint64_t first =
              keep_low ? chunk.lo : (m - chunk.hi);
          co_await api.overhead(app->params_.read_loop_cycles);
          co_await api.remote_read_block(
              rt::GlobalAddr{partner, app->buf_addr(cur, first)},
              mate_base(m) + static_cast<LocalAddr>(first),
              static_cast<std::uint32_t>(chunk.size()));
        }
      } else {
        // The paper's loop: body is read_loop_cycles + the 1-clock send
        // = the 12-clock run length. Loop scaffolding (address
        // computation, buffer store, loop control) is communication
        // overhead, per the paper's null-loop measurement methodology.
        for (std::uint64_t k = chunk.lo; k < chunk.hi; ++k) {
          const std::uint64_t idx = keep_low ? k : (m - 1 - k);
          co_await api.overhead(app->params_.read_loop_cycles);
          const Word v = co_await api.remote_read(
              rt::GlobalAddr{partner, app->buf_addr(cur, idx)});
          api.local_write(mate_base(m) + static_cast<LocalAddr>(idx), v);
        }
      }

      // Computation phase: merge strictly in thread order.
      co_await api.gate_wait(st.gate, t);
      if (t == 0) {
        st.own_taken = 0;
        st.mate_taken = 0;
        st.produced = 0;
      }
      const std::uint64_t produced =
          app->merge_chunk(me, keep_low, cur, chunk.hi, t == h - 1);
      if (produced > 0) {
        co_await api.compute(app->params_.merge_cycles_per_element * produced);
      }
      co_await api.gate_advance(st.gate);
      if (t == h - 1) st.gate.reset(h);

      cur ^= 1u;
      co_await api.iteration_barrier();
    }
  }
  co_return;
}

std::vector<Word> BitonicSortApp::gather() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_elems();
  std::vector<Word> out;
  out.reserve(params_.n);
  for (ProcId p = 0; p < P; ++p) {
    const auto& mem = const_cast<Machine&>(machine_).memory(p);
    for (std::uint64_t k = 0; k < m; ++k) out.push_back(mem.read(buf_addr(final_parity_, k)));
  }
  return out;
}

bool BitonicSortApp::verify() const {
  const std::vector<Word> result = gather();
  return is_sorted_ascending(result) && same_multiset(result, input_);
}

}  // namespace emx::apps
