#include "apps/fft_cyclic.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "apps/distribution.hpp"
#include "apps/host_reference.hpp"
#include "apps/verify.hpp"
#include "common/rng.hpp"
#include "runtime/barrier.hpp"

namespace emx::apps {

namespace {
constexpr LocalAddr plane_base(std::uint64_t m, std::uint32_t plane) {
  return rt::kReservedWords + static_cast<LocalAddr>(plane * m);
}

std::complex<float> twiddle(std::uint64_t k, std::uint64_t size) {
  const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(size);
  return {static_cast<float>(std::cos(angle)),
          static_cast<float>(std::sin(angle))};
}
}  // namespace

CyclicFftApp::CyclicFftApp(Machine& machine, CyclicFftParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(is_power_of_two(P), "cyclic FFT requires power-of-two P");
  EMX_CHECK(is_power_of_two(params_.n), "FFT size must be a power of two");
  EMX_CHECK(params_.n >= P, "need at least one point per PE");
  const std::uint64_t m = per_proc_points();
  EMX_CHECK(plane_base(m, 3) + m <= machine_.config().memory_words,
            "point block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return cyclic_fft_worker(this, api, arg);
      });
}

std::uint64_t CyclicFftApp::per_proc_points() const {
  return params_.n / machine_.config().proc_count;
}

std::uint32_t CyclicFftApp::final_parity() const {
  return ilog2(machine_.config().proc_count) % 2;
}

LocalAddr CyclicFftApp::re_addr(std::uint32_t parity, std::uint64_t slot) const {
  return plane_base(per_proc_points(), 2 * parity) + static_cast<LocalAddr>(slot);
}

LocalAddr CyclicFftApp::im_addr(std::uint32_t parity, std::uint64_t slot) const {
  return plane_base(per_proc_points(), 2 * parity + 1) +
         static_cast<LocalAddr>(slot);
}

void CyclicFftApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_points();

  Rng& rng = machine_.streams().stream("workload.fft-cyclic", params_.seed);
  input_.resize(params_.n);
  for (auto& c : input_) {
    c = {static_cast<float>(rng.next_double() * 2.0 - 1.0),
         static_cast<float>(rng.next_double() * 2.0 - 1.0)};
  }

  // Cyclic: global point q*P + r lives on PE r, slot q.
  for (ProcId r = 0; r < P; ++r) {
    auto& mem = machine_.memory(r);
    for (std::uint64_t q = 0; q < m; ++q) {
      const auto& c = input_[q * P + r];
      mem.write_f32(re_addr(0, q), c.real());
      mem.write_f32(im_addr(0, q), c.imag());
    }
  }

  machine_.configure_barrier(params_.threads);
  for (ProcId r = 0; r < P; ++r) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(r, worker_entry_, t);
    }
  }
}

rt::ThreadBody cyclic_fft_worker(CyclicFftApp* app, rt::ThreadApi api,
                                 Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint32_t P = api.config().proc_count;
  const std::uint64_t m = app->per_proc_points();
  const std::uint64_t n = app->params_.n;
  const ThreadChunk chunk = thread_chunk(m, h, t);
  auto& mem = api.memory();

  // ---- leading local iterations: every stride >= P pairs two slots on
  // this PE (their global indices differ by a multiple of P) ----
  std::uint32_t cur = 0;
  if (app->params_.include_local_phase && m >= 2) {
    if (t == 0) {
      for (std::uint64_t size = n; size >= 2 * P; size /= 2) {
        const std::uint64_t half_slots = (size / 2) / P;  // pair distance in slots
        const std::uint64_t size_slots = size / P;
        for (std::uint64_t start = 0; start < m; start += size_slots) {
          for (std::uint64_t k = 0; k < half_slots; ++k) {
            const std::uint64_t qa = start + k;
            const std::uint64_t qb = qa + half_slots;
            const std::complex<float> a(mem.read_f32(app->re_addr(cur, qa)),
                                        mem.read_f32(app->im_addr(cur, qa)));
            const std::complex<float> b(mem.read_f32(app->re_addr(cur, qb)),
                                        mem.read_f32(app->im_addr(cur, qb)));
            const std::complex<float> lo = a + b;
            // Twiddle index of the second-half element: its global index
            // modulo half the transform size.
            const std::uint64_t g = qa * P + me;
            const std::complex<float> hi = (a - b) * twiddle(g & (size / 2 - 1), size);
            mem.write_f32(app->re_addr(cur, qa), lo.real());
            mem.write_f32(app->im_addr(cur, qa), lo.imag());
            mem.write_f32(app->re_addr(cur, qb), hi.real());
            mem.write_f32(app->im_addr(cur, qb), hi.imag());
          }
        }
      }
      const unsigned local_iters = ilog2(m);
      co_await api.compute(app->params_.local_point_cycles * (m / 2) * local_iters);
    }
    co_await api.iteration_barrier();
  }

  // ---- trailing log P iterations: stride < P pairs PE r with r^stride,
  // same slot (communication phase comes LAST under the cyclic layout) ----
  for (std::uint64_t half = P / 2; half >= 1; half /= 2) {
    const std::uint64_t size = 2 * half;
    const ProcId partner = me ^ static_cast<ProcId>(half);
    for (std::uint64_t q = chunk.lo; q < chunk.hi; ++q) {
      co_await api.overhead(app->params_.addr_cycles);
      const auto [wre, wim] = co_await api.remote_read_pair(
          rt::GlobalAddr{partner, app->re_addr(cur, q)},
          rt::GlobalAddr{partner, app->im_addr(cur, q)});
      co_await api.compute(app->params_.point_cycles);

      const std::complex<float> mate(std::bit_cast<float>(wre),
                                     std::bit_cast<float>(wim));
      const std::complex<float> own(mem.read_f32(app->re_addr(cur, q)),
                                    mem.read_f32(app->im_addr(cur, q)));
      std::complex<float> out;
      if ((me & half) == 0) {
        out = own + mate;
      } else {
        // g & (half-1) == me & (half-1) because P | (q*P) and half <= P.
        out = (mate - own) * twiddle(me & (half - 1), size);
      }
      mem.write_f32(app->re_addr(cur ^ 1u, q), out.real());
      mem.write_f32(app->im_addr(cur ^ 1u, q), out.imag());
    }
    cur ^= 1u;
    co_await api.iteration_barrier();
  }
  co_return;
}

std::vector<std::complex<float>> CyclicFftApp::gather() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_points();
  const std::uint32_t parity = final_parity();
  std::vector<std::complex<float>> out(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId r = 0; r < P; ++r) {
    auto& mem = machine.memory(r);
    for (std::uint64_t q = 0; q < m; ++q) {
      out[q * P + r] = {mem.read_f32(re_addr(parity, q)),
                        mem.read_f32(im_addr(parity, q))};
    }
  }
  return out;
}

double CyclicFftApp::verify_error() const {
  std::vector<std::complex<float>> expect = input_;
  host_fft_dif(expect);
  return max_relative_error(gather(), expect);
}

}  // namespace emx::apps
