// Host-side reference computations used to verify simulator results.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace emx::apps {

/// Iterative decimation-in-frequency FFT, natural input order,
/// bit-reversed output order — the exact operation order the simulated
/// multithreaded FFT performs, so results match to float rounding.
void host_fft_dif(std::vector<std::complex<float>>& data);

/// O(n^2) double-precision DFT for small-n ground truth in tests.
std::vector<std::complex<double>> host_dft(
    const std::vector<std::complex<double>>& input);

/// Bit-reversal permutation (undoes DIF output ordering), n a power of 2.
void bit_reverse_permute(std::vector<std::complex<float>>& data);

/// Batcher's bitonic sorting network run element-wise on the host —
/// cross-checks the distributed compare-split direction pattern.
void host_bitonic_sort(std::vector<std::uint32_t>& data);

}  // namespace emx::apps
