// Jacobi relaxation with halo exchange — a third workload completing the
// paper's computation-to-communication spectrum.
//
// The paper picked its two problems by "the computation-to-communication
// ratio and the amount of thread parallelism": bitonic sorting sits at
// ~1:1 with no thread computation parallelism, FFT is compute-heavy with
// full parallelism. A 1-D Jacobi sweep is the extreme point: per
// iteration each PE remote-reads just the two halo cells from its
// neighbours and then relaxes its whole block — communication is so
// small that a single thread already overlaps it; extra threads only buy
// intra-block parallelism. (The paper's intro motivates exactly such
// stencil/CFD workloads whose behaviour shifts at runtime.)
//
// u'[i] = 0.5 * (u[i-1] + u[i+1]), fixed boundary cells, single
// precision, blocked distribution, ping-pong buffers, one iteration
// barrier per sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"

namespace emx::apps {

struct JacobiParams {
  std::uint64_t n = 1024;       ///< grid cells (P | n, n/P >= 2)
  std::uint32_t threads = 1;    ///< h, threads per PE
  std::uint32_t iterations = 10;
  std::uint64_t seed = 0x5EED0004;

  Cycle cell_cycles = 6;        ///< load, add, multiply, store per cell
  Cycle halo_addr_cycles = 4;   ///< neighbour address computation
};

class JacobiApp {
 public:
  JacobiApp(Machine& machine, JacobiParams params);

  void setup();

  const JacobiParams& params() const { return params_; }
  const std::vector<float>& input() const { return input_; }

  /// Gathers the relaxed grid after run().
  std::vector<float> gather() const;

  /// Host-side reference: the same sweeps in double precision; returns
  /// the max absolute difference.
  double verify_error() const;

  LocalAddr cell_addr(std::uint32_t parity, std::uint64_t k) const;

 private:
  friend rt::ThreadBody jacobi_worker(JacobiApp* app, rt::ThreadApi api,
                                      Word thread_index);

  std::uint64_t per_proc_cells() const;

  Machine& machine_;
  JacobiParams params_;
  std::vector<float> input_;
  std::uint32_t worker_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody jacobi_worker(JacobiApp* app, rt::ThreadApi api,
                             Word thread_index);

}  // namespace emx::apps
