#include "apps/verify.hpp"

#include <algorithm>
#include <cmath>

namespace emx::apps {

bool is_sorted_ascending(const std::vector<std::uint32_t>& data) {
  return std::is_sorted(data.begin(), data.end());
}

bool same_multiset(std::vector<std::uint32_t> a, std::vector<std::uint32_t> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

double max_relative_error(const std::vector<std::complex<float>>& a,
                          const std::vector<std::complex<float>>& b) {
  if (a.size() != b.size()) return 1.0e9;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double err = std::abs(std::complex<double>(a[i]) -
                                std::complex<double>(b[i]));
    const double mag = std::max({1.0, std::abs(std::complex<double>(a[i])),
                                 std::abs(std::complex<double>(b[i]))});
    worst = std::max(worst, err / mag);
  }
  return worst;
}

}  // namespace emx::apps
