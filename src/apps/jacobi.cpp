#include "apps/jacobi.hpp"

#include <bit>
#include <cmath>

#include "apps/distribution.hpp"
#include "common/rng.hpp"
#include "runtime/barrier.hpp"

namespace emx::apps {

namespace {
constexpr LocalAddr buf_base(std::uint64_t m, std::uint32_t parity) {
  return rt::kReservedWords + static_cast<LocalAddr>(parity * m);
}
}  // namespace

JacobiApp::JacobiApp(Machine& machine, JacobiParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(params_.n % P == 0, "blocked distribution requires P | n");
  EMX_CHECK(params_.n / P >= 2, "need at least two cells per PE");
  const std::uint64_t m = per_proc_cells();
  EMX_CHECK(buf_base(m, 1) + m <= machine_.config().memory_words,
            "grid block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return jacobi_worker(this, api, arg);
      });
}

std::uint64_t JacobiApp::per_proc_cells() const {
  return params_.n / machine_.config().proc_count;
}

LocalAddr JacobiApp::cell_addr(std::uint32_t parity, std::uint64_t k) const {
  return buf_base(per_proc_cells(), parity) + static_cast<LocalAddr>(k);
}

void JacobiApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_cells();

  Rng& rng = machine_.streams().stream("workload.jacobi", params_.seed);
  input_.resize(params_.n);
  for (auto& v : input_) v = static_cast<float>(rng.next_double());

  const BlockDist dist(params_.n, P);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      mem.write_f32(cell_addr(0, k), input_[dist.global_index(p, k)]);
    }
  }

  machine_.configure_barrier(params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

rt::ThreadBody jacobi_worker(JacobiApp* app, rt::ThreadApi api,
                             Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint32_t P = api.config().proc_count;
  const std::uint64_t m = app->per_proc_cells();
  const std::uint64_t n = app->params_.n;
  const ThreadChunk chunk = thread_chunk(m, h, t);
  auto& mem = api.memory();

  // Halo responsibilities: the thread owning the block's first cell
  // fetches the left halo, the one owning the last cell the right halo.
  const bool needs_left = chunk.lo == 0 && chunk.size() > 0 && me > 0;
  const bool needs_right = chunk.hi == m && chunk.size() > 0 && me + 1 < P;

  std::uint32_t cur = 0;
  for (std::uint32_t iter = 0; iter < app->params_.iterations; ++iter) {
    float left_halo = 0.0f;
    float right_halo = 0.0f;
    if (needs_left && needs_right) {
      // Both halos under one suspension via two-operand matching.
      co_await api.overhead(app->params_.halo_addr_cycles);
      const auto [wl, wr] = co_await api.remote_read_pair(
          rt::GlobalAddr{me - 1, app->cell_addr(cur, m - 1)},
          rt::GlobalAddr{me + 1, app->cell_addr(cur, 0)});
      left_halo = std::bit_cast<float>(wl);
      right_halo = std::bit_cast<float>(wr);
    } else if (needs_left) {
      co_await api.overhead(app->params_.halo_addr_cycles);
      left_halo = std::bit_cast<float>(co_await api.remote_read(
          rt::GlobalAddr{me - 1, app->cell_addr(cur, m - 1)}));
    } else if (needs_right) {
      co_await api.overhead(app->params_.halo_addr_cycles);
      right_halo = std::bit_cast<float>(co_await api.remote_read(
          rt::GlobalAddr{me + 1, app->cell_addr(cur, 0)}));
    }

    // Relax this thread's cells (host math; bulk cycle charge).
    for (std::uint64_t k = chunk.lo; k < chunk.hi; ++k) {
      const std::uint64_t g = static_cast<std::uint64_t>(me) * m + k;
      float next;
      if (g == 0 || g == n - 1) {
        next = mem.read_f32(app->cell_addr(cur, k));  // fixed boundary
      } else {
        const float left = k == 0 ? left_halo
                                  : mem.read_f32(app->cell_addr(cur, k - 1));
        const float right = k == m - 1
                                ? right_halo
                                : mem.read_f32(app->cell_addr(cur, k + 1));
        next = 0.5f * (left + right);
      }
      mem.write_f32(app->cell_addr(cur ^ 1u, k), next);
    }
    if (chunk.size() > 0) {
      co_await api.compute(app->params_.cell_cycles * chunk.size());
    }

    cur ^= 1u;
    co_await api.iteration_barrier();
  }
  co_return;
}

std::vector<float> JacobiApp::gather() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_cells();
  const std::uint32_t parity = params_.iterations % 2;
  std::vector<float> out;
  out.reserve(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      out.push_back(mem.read_f32(cell_addr(parity, k)));
    }
  }
  return out;
}

double JacobiApp::verify_error() const {
  // Identical float sweeps on the host.
  std::vector<float> u = input_;
  std::vector<float> v(u.size());
  for (std::uint32_t iter = 0; iter < params_.iterations; ++iter) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      v[i] = (i == 0 || i + 1 == u.size()) ? u[i]
                                           : 0.5f * (u[i - 1] + u[i + 1]);
    }
    u.swap(v);
  }
  const std::vector<float> got = gather();
  double worst = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(got[i]) - u[i]));
  }
  return worst;
}

}  // namespace emx::apps
