#include "apps/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "apps/distribution.hpp"
#include "apps/host_reference.hpp"
#include "apps/verify.hpp"
#include "common/rng.hpp"
#include "runtime/barrier.hpp"

namespace emx::apps {

namespace {
// Per-PE layout: ping-pong real/imaginary planes.
constexpr LocalAddr plane_base(std::uint64_t m, std::uint32_t plane) {
  return rt::kReservedWords + static_cast<LocalAddr>(plane * m);
}

std::complex<float> twiddle(std::uint64_t k, std::uint64_t size) {
  const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(size);
  return {static_cast<float>(std::cos(angle)),
          static_cast<float>(std::sin(angle))};
}
}  // namespace

FftApp::FftApp(Machine& machine, FftParams params)
    : machine_(machine), params_(params) {
  EMX_CHECK(params_.threads >= 1, "need at least one thread per PE");
  const std::uint32_t P = machine_.config().proc_count;
  EMX_CHECK(is_power_of_two(P), "FFT distribution requires power-of-two P");
  EMX_CHECK(is_power_of_two(params_.n), "FFT size must be a power of two");
  EMX_CHECK(params_.n >= P, "need at least one point per PE");
  const std::uint64_t m = per_proc_points();
  EMX_CHECK(plane_base(m, 3) + m <= machine_.config().memory_words,
            "point block does not fit in per-PE memory");
  worker_entry_ = machine_.register_entry(
      [this](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return fft_worker(this, api, arg);
      });
}

std::uint64_t FftApp::per_proc_points() const {
  return params_.n / machine_.config().proc_count;
}

std::uint32_t FftApp::final_parity() const {
  return ilog2(machine_.config().proc_count) % 2;
}

LocalAddr FftApp::re_addr(std::uint32_t parity, std::uint64_t k) const {
  return plane_base(per_proc_points(), 2 * parity) + static_cast<LocalAddr>(k);
}

LocalAddr FftApp::im_addr(std::uint32_t parity, std::uint64_t k) const {
  return plane_base(per_proc_points(), 2 * parity + 1) + static_cast<LocalAddr>(k);
}

void FftApp::setup() {
  EMX_CHECK(!setup_done_, "setup() called twice");
  setup_done_ = true;
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_points();

  Rng& rng = machine_.streams().stream("workload.fft", params_.seed);
  input_.resize(params_.n);
  for (auto& c : input_) {
    c = {static_cast<float>(rng.next_double() * 2.0 - 1.0),
         static_cast<float>(rng.next_double() * 2.0 - 1.0)};
  }

  const BlockDist dist(params_.n, P);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine_.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      const auto& c = input_[dist.global_index(p, k)];
      mem.write_f32(re_addr(0, k), c.real());
      mem.write_f32(im_addr(0, k), c.imag());
    }
  }

  machine_.configure_barrier(params_.threads);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < params_.threads; ++t) {
      machine_.spawn(p, worker_entry_, t);
    }
  }
}

rt::ThreadBody fft_worker(FftApp* app, rt::ThreadApi api, Word thread_index) {
  const auto t = static_cast<std::uint32_t>(thread_index);
  const std::uint32_t h = app->params_.threads;
  const ProcId me = api.proc();
  const std::uint32_t P = api.config().proc_count;
  const std::uint64_t m = app->per_proc_points();
  const std::uint64_t n = app->params_.n;
  const ThreadChunk chunk = thread_chunk(m, h, t);
  auto& mem = api.memory();

  // ---- first log P iterations: every point needs the mate PE's copy ----
  std::uint32_t cur = 0;
  const unsigned logp = ilog2(P);
  for (unsigned it = 0; it < logp; ++it) {
    const std::uint64_t size = n >> it;
    const std::uint64_t half = size / 2;
    const ProcId partner = me ^ (P >> (it + 1));
    for (std::uint64_t k = chunk.lo; k < chunk.hi; ++k) {
      // "compute real_address and img_address;"
      co_await api.overhead(app->params_.addr_cycles);
      // "mate_real = remote_read(real_address++);
      //  mate_img  = remote_read(img_address++);"
      // Both requests go out back to back; the MU's two-operand direct
      // matching resumes the thread once both words have arrived.
      const auto [wre, wim] = co_await api.remote_read_pair(
          rt::GlobalAddr{partner, app->re_addr(cur, k)},
          rt::GlobalAddr{partner, app->im_addr(cur, k)});
      // "a lot of instructions with two reals and two imaginaries" —
      // butterfly plus the trigonometric twiddle computation.
      co_await api.compute(app->params_.point_cycles);

      const std::complex<float> mate(std::bit_cast<float>(wre),
                                     std::bit_cast<float>(wim));
      const std::complex<float> own(mem.read_f32(app->re_addr(cur, k)),
                                    mem.read_f32(app->im_addr(cur, k)));
      const std::uint64_t g = static_cast<std::uint64_t>(me) * m + k;
      std::complex<float> out;
      if ((g & half) == 0) {
        out = own + mate;  // first element of the DIF butterfly
      } else {
        out = (mate - own) * twiddle(g & (half - 1), size);
      }
      mem.write_f32(app->re_addr(cur ^ 1u, k), out.real());
      mem.write_f32(app->im_addr(cur ^ 1u, k), out.imag());
    }
    cur ^= 1u;
    co_await api.iteration_barrier();
  }

  // ---- remaining log(n/P) iterations are purely local (paper §3.2) ----
  if (app->params_.include_local_phase) {
    if (t == 0 && m >= 2) {
      // Thread 0 runs the local butterflies in place; the twiddle index
      // within a block equals the global one because blocks are aligned
      // to every remaining transform size.
      for (std::uint64_t size = m; size >= 2; size /= 2) {
        const std::uint64_t half = size / 2;
        for (std::uint64_t start = 0; start < m; start += size) {
          for (std::uint64_t k = 0; k < half; ++k) {
            const std::complex<float> a(mem.read_f32(app->re_addr(cur, start + k)),
                                        mem.read_f32(app->im_addr(cur, start + k)));
            const std::complex<float> b(
                mem.read_f32(app->re_addr(cur, start + k + half)),
                mem.read_f32(app->im_addr(cur, start + k + half)));
            const std::complex<float> lo = a + b;
            const std::complex<float> hi = (a - b) * twiddle(k, size);
            mem.write_f32(app->re_addr(cur, start + k), lo.real());
            mem.write_f32(app->im_addr(cur, start + k), lo.imag());
            mem.write_f32(app->re_addr(cur, start + k + half), hi.real());
            mem.write_f32(app->im_addr(cur, start + k + half), hi.imag());
          }
        }
      }
      const unsigned local_iters = ilog2(m);
      co_await api.compute(app->params_.local_point_cycles * (m / 2) * local_iters);
    }
    co_await api.iteration_barrier();
  }
  co_return;
}

std::vector<std::complex<float>> FftApp::gather() const {
  const std::uint32_t P = machine_.config().proc_count;
  const std::uint64_t m = per_proc_points();
  const std::uint32_t parity = final_parity();
  std::vector<std::complex<float>> out;
  out.reserve(params_.n);
  auto& machine = const_cast<Machine&>(machine_);
  for (ProcId p = 0; p < P; ++p) {
    auto& mem = machine.memory(p);
    for (std::uint64_t k = 0; k < m; ++k) {
      out.emplace_back(mem.read_f32(re_addr(parity, k)),
                       mem.read_f32(im_addr(parity, k)));
    }
  }
  return out;
}

double FftApp::verify_error() const {
  std::vector<std::complex<float>> expect = input_;
  host_fft_dif(expect);
  return max_relative_error(gather(), expect);
}

}  // namespace emx::apps
