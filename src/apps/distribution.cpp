#include "apps/distribution.hpp"

// Header-only helpers; TU anchors the module in the library.
