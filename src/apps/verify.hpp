// Result verification helpers: the simulator stores real data, so every
// experiment checks its answer, not just its timing.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace emx::apps {

/// True if `data` is non-decreasing.
bool is_sorted_ascending(const std::vector<std::uint32_t>& data);

/// True if `a` and `b` contain the same multiset of values.
bool same_multiset(std::vector<std::uint32_t> a, std::vector<std::uint32_t> b);

/// Relative/absolute mixed tolerance comparison of complex vectors.
/// Returns the max elementwise error normalized by the larger magnitude.
double max_relative_error(const std::vector<std::complex<float>>& a,
                          const std::vector<std::complex<float>>& b);

}  // namespace emx::apps
