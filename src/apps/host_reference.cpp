#include "apps/host_reference.hpp"

#include <algorithm>
#include <numbers>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace emx::apps {

void host_fft_dif(std::vector<std::complex<float>>& data) {
  const std::size_t n = data.size();
  EMX_CHECK(is_power_of_two(n), "FFT size must be a power of two");
  for (std::size_t size = n; size >= 2; size /= 2) {
    const std::size_t half = size / 2;
    for (std::size_t start = 0; start < n; start += size) {
      for (std::size_t k = 0; k < half; ++k) {
        const double angle =
            -2.0 * std::numbers::pi * static_cast<double>(k) /
            static_cast<double>(size);
        const std::complex<float> w(static_cast<float>(std::cos(angle)),
                                    static_cast<float>(std::sin(angle)));
        const std::complex<float> a = data[start + k];
        const std::complex<float> b = data[start + k + half];
        data[start + k] = a + b;
        data[start + k + half] = (a - b) * w;
      }
    }
  }
}

std::vector<std::complex<double>> host_dft(
    const std::vector<std::complex<double>>& input) {
  const std::size_t n = input.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) / static_cast<double>(n);
      acc += input[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void bit_reverse_permute(std::vector<std::complex<float>>& data) {
  const std::size_t n = data.size();
  EMX_CHECK(is_power_of_two(n), "size must be a power of two");
  const unsigned bits = ilog2(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (unsigned b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    if (r > i) std::swap(data[i], data[r]);
  }
}

void host_bitonic_sort(std::vector<std::uint32_t>& data) {
  const std::size_t n = data.size();
  EMX_CHECK(is_power_of_two(n), "bitonic network needs a power-of-two size");
  for (std::size_t k = 2; k <= n; k *= 2) {
    for (std::size_t j = k / 2; j > 0; j /= 2) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t partner = i ^ j;
        if (partner <= i) continue;
        const bool ascending = (i & k) == 0;
        const bool out_of_order =
            ascending ? data[i] > data[partner] : data[i] < data[partner];
        if (out_of_order) std::swap(data[i], data[partner]);
      }
    }
  }
}

}  // namespace emx::apps
