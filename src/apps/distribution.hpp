// Blocked data and workload distribution (paper §3: "Both problems have
// been implemented on EM-X with blocked data and workload distribution
// strategies"): n elements over P processors in contiguous blocks of
// m = n/P, and each PE's block over h threads in contiguous chunks.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace emx::apps {

/// Block distribution of n elements over P processors.
struct BlockDist {
  std::uint64_t n = 0;
  std::uint32_t procs = 1;

  BlockDist(std::uint64_t n_, std::uint32_t procs_) : n(n_), procs(procs_) {
    EMX_CHECK(procs_ >= 1, "need at least one processor");
    EMX_CHECK(n_ % procs_ == 0, "blocked distribution requires P | n");
  }

  std::uint64_t per_proc() const { return n / procs; }
  ProcId owner(std::uint64_t global_index) const {
    return static_cast<ProcId>(global_index / per_proc());
  }
  std::uint64_t local_index(std::uint64_t global_index) const {
    return global_index % per_proc();
  }
  std::uint64_t global_index(ProcId proc, std::uint64_t local) const {
    return static_cast<std::uint64_t>(proc) * per_proc() + local;
  }
};

/// Balanced contiguous chunk [lo, hi) of `m` items for thread t of h.
/// Chunks differ in size by at most one item; empty chunks are legal
/// (h > m), the thread still participates in gates and barriers.
struct ThreadChunk {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t size() const { return hi - lo; }
};

inline ThreadChunk thread_chunk(std::uint64_t m, std::uint32_t h, std::uint32_t t) {
  EMX_CHECK(h >= 1 && t < h, "bad thread index");
  return ThreadChunk{m * t / h, m * (t + 1) / h};
}

// ----- bitonic network direction helpers (Batcher's network on blocks) --

/// True if, at merge stage i, processor `rank`'s pair sorts ascending
/// (the paper's shaded circles in Figure 3).
inline bool bitonic_ascending(ProcId rank, unsigned stage) {
  return ((rank >> (stage + 1)) & 1u) == 0;
}

/// True if `rank` keeps the low half of the pairwise merge at (stage i,
/// distance step j): the ascending member with a 0 bit at position j, or
/// the descending member with a 1 bit.
inline bool bitonic_keep_low(ProcId rank, unsigned stage, unsigned step) {
  const bool ascending = bitonic_ascending(rank, stage);
  const bool low_bit_clear = ((rank >> step) & 1u) == 0;
  return ascending == low_bit_clear;
}

/// Number of merge steps in the whole sort: log P (log P + 1) / 2.
inline unsigned bitonic_merge_steps(std::uint32_t procs) {
  const unsigned lp = ilog2(procs);
  return lp * (lp + 1) / 2;
}

}  // namespace emx::apps
