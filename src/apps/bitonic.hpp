// Multithreaded bitonic sorting on the simulated EM-X (paper §3.1).
//
// Structure (exactly the paper's algorithm):
//  * local sort: each PE sorts its n/P block ascending;
//  * log P (log P + 1)/2 merge steps; at step (i, j) PE r pairs with
//    r XOR 2^j and keeps the low or high half per Batcher's network;
//  * each PE's n/P remote reads per step are split across h threads
//    (thread communication parallelism): the read loop body is 12 clocks
//    including the 1-clock send (run length 12, §4);
//  * threads merge strictly in thread order through an OrderGate (thread
//    computation is sequential — the paper's "sorting lacks computation
//    parallelism across threads"); the merge may finish before consuming
//    every mate element (irregular computation, §3.1), but all reads are
//    issued regardless (Fig. 9: remote-read switch count is fixed);
//  * an iteration barrier ends every merge step (§4).
//
// Buffers ping-pong between steps so a PE never overwrites data its mate
// is still reading.
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "runtime/order_gate.hpp"

namespace emx::apps {

struct BitonicParams {
  std::uint64_t n = 1024;          ///< total elements (P | n required)
  std::uint32_t threads = 1;       ///< h, threads per PE
  std::uint64_t seed = 0x5EED0001; ///< workload RNG seed

  // Instruction budgets (cycles), from the paper's §4 measurements.
  Cycle read_loop_cycles = 11;     ///< + 1-cycle send = 12-clock loop body
  Cycle merge_cycles_per_element = 10;
  Cycle local_sort_cycles_per_key = 4;  ///< x log2(m) per key

  /// Replace the paper's element-wise read loop with one EMC-Y block
  /// read per thread chunk (one suspension, words streamed at wire
  /// rate). An optimisation the paper's code leaves on the table;
  /// exercised by bench/ablation_block_read and tests.
  bool use_block_reads = false;
};

/// Owns the per-PE shared state and registers the worker entry; the app
/// object must outlive Machine::run().
class BitonicSortApp {
 public:
  BitonicSortApp(Machine& machine, BitonicParams params);

  /// Generates the input, loads PE memories, spawns h workers per PE and
  /// configures the barrier. Call once, before machine.run().
  void setup();

  const BitonicParams& params() const { return params_; }
  const std::vector<Word>& input() const { return input_; }

  /// Gathers the sorted result across PEs (valid after machine.run()).
  std::vector<Word> gather() const;

  /// Sorted ascending and a permutation of the input?
  bool verify() const;

  /// Word address of element `k` in the step-`parity` buffer.
  LocalAddr buf_addr(std::uint32_t parity, std::uint64_t k) const;

 private:
  friend rt::ThreadBody bitonic_worker(BitonicSortApp* app, rt::ThreadApi api,
                                       Word thread_index);

  /// Shared per-PE merge state (host-side mirror of what the EM-X keeps
  /// in the activation frames / operand segments).
  struct PerProc {
    rt::OrderGate gate;
    std::uint64_t own_taken = 0;   ///< elements consumed from own list
    std::uint64_t mate_taken = 0;  ///< elements consumed from mate list
    std::uint64_t produced = 0;    ///< outputs written this step
  };

  /// Merges mate elements up to `mate_limit` consumed; returns how many
  /// outputs this call produced. `final_thread` drains the own list.
  std::uint64_t merge_chunk(ProcId me, bool keep_low, std::uint32_t cur,
                            std::uint64_t mate_limit, bool final_thread);

  std::uint64_t per_proc_elems() const;

  Machine& machine_;
  BitonicParams params_;
  std::vector<PerProc> state_;
  std::vector<Word> input_;
  std::uint32_t worker_entry_ = 0;
  std::uint32_t final_parity_ = 0;
  bool setup_done_ = false;
};

/// The worker thread coroutine (one per (PE, thread index)).
rt::ThreadBody bitonic_worker(BitonicSortApp* app, rt::ThreadApi api,
                              Word thread_index);

}  // namespace emx::apps
