// Multithreaded FFT on the simulated EM-X (paper §3.2).
//
// Single-precision complex DIF FFT with blocked distribution: PE p owns
// points [p·m, (p+1)·m), m = n/P. The first log P iterations pair each PE
// with a mate at halving distance; every point needs the mate's real and
// imaginary words (two split-phase remote reads) followed by a large
// butterfly + twiddle computation ("hundreds of clocks due to
// trigonometric function computations"). There is no dependence between
// points within an iteration, so threads compute the moment their data
// returns — no thread synchronisation, only the per-iteration barrier.
//
// As in the paper, benches time only the first log P (communication)
// iterations; `include_local_phase` additionally runs the remaining
// log(n) - log(P) local iterations so tests can verify the transform
// end-to-end against a host FFT.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "core/machine.hpp"

namespace emx::apps {

struct FftParams {
  std::uint64_t n = 1024;          ///< points; power of two, P | n
  std::uint32_t threads = 1;       ///< h, threads per PE
  std::uint64_t seed = 0x5EED0002;
  bool include_local_phase = false;

  // Instruction budgets (cycles).
  Cycle addr_cycles = 2;           ///< "compute real_address and img_address"
  Cycle point_cycles = 250;        ///< butterfly + twiddle trig loop
  Cycle local_point_cycles = 60;   ///< local-phase butterfly (table twiddles)
};

class FftApp {
 public:
  FftApp(Machine& machine, FftParams params);

  /// Generates the input signal, loads PE memories, spawns workers.
  void setup();

  const FftParams& params() const { return params_; }
  const std::vector<std::complex<float>>& input() const { return input_; }

  /// Gathers the (bit-reversed-order) transform output after run().
  std::vector<std::complex<float>> gather() const;

  /// Compares against the host reference; returns the max relative error.
  /// Only meaningful when include_local_phase is true (full transform).
  double verify_error() const;

  LocalAddr re_addr(std::uint32_t parity, std::uint64_t k) const;
  LocalAddr im_addr(std::uint32_t parity, std::uint64_t k) const;

 private:
  friend rt::ThreadBody fft_worker(FftApp* app, rt::ThreadApi api,
                                   Word thread_index);

  std::uint64_t per_proc_points() const;
  std::uint32_t final_parity() const;

  Machine& machine_;
  FftParams params_;
  std::vector<std::complex<float>> input_;
  std::uint32_t worker_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody fft_worker(FftApp* app, rt::ThreadApi api, Word thread_index);

}  // namespace emx::apps
