// Cyclic-distribution multithreaded FFT — the data/workload distribution
// counterpart the paper's companion study ([23], Sohn et al., JPDC 1997)
// examines against hand-tuned blocked layouts.
//
// With point i on PE (i mod P), the DIF iteration structure inverts
// relative to the blocked layout: every butterfly with stride >= P pairs
// two points on the SAME PE (strides are multiples of P apart... every
// stride s >= P satisfies (g and g+s) mod P equal only when P | s; DIF
// strides are powers of two, so all strides >= P are local), while the
// final log P iterations (stride < P) pair PE r with PE r XOR s.
// Communication therefore happens at the END of the transform instead of
// the beginning — same packet count, same per-point twiddle work,
// different phase structure. bench/ablation_distribution compares the
// two layouts.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "core/machine.hpp"

namespace emx::apps {

struct CyclicFftParams {
  std::uint64_t n = 1024;     ///< points; power of two, >= P
  std::uint32_t threads = 1;  ///< h, threads per PE
  std::uint64_t seed = 0x5EED0003;
  bool include_local_phase = true;  ///< run the leading local iterations

  Cycle addr_cycles = 2;
  Cycle point_cycles = 250;
  Cycle local_point_cycles = 60;
};

class CyclicFftApp {
 public:
  CyclicFftApp(Machine& machine, CyclicFftParams params);

  void setup();

  const CyclicFftParams& params() const { return params_; }
  const std::vector<std::complex<float>>& input() const { return input_; }

  /// Gathers the (bit-reversed-order) output after run().
  std::vector<std::complex<float>> gather() const;

  /// Max relative error vs the host DIF reference (needs the local
  /// phase to have run).
  double verify_error() const;

  LocalAddr re_addr(std::uint32_t parity, std::uint64_t slot) const;
  LocalAddr im_addr(std::uint32_t parity, std::uint64_t slot) const;

 private:
  friend rt::ThreadBody cyclic_fft_worker(CyclicFftApp* app, rt::ThreadApi api,
                                          Word thread_index);

  std::uint64_t per_proc_points() const;
  std::uint32_t final_parity() const;

  Machine& machine_;
  CyclicFftParams params_;
  std::vector<std::complex<float>> input_;
  std::uint32_t worker_entry_ = 0;
  bool setup_done_ = false;
};

rt::ThreadBody cyclic_fft_worker(CyclicFftApp* app, rt::ThreadApi api,
                                 Word thread_index);

}  // namespace emx::apps
