// The Saavedra-Barrera analytic model of multithreaded processor
// efficiency (paper reference [16]: Saavedra-Barrera, Culler, von Eicken,
// SPAA 1990), which the EM-X paper invokes to frame its results:
// "the performance of multithreading can be classified into three
//  regions: linear, transition, and saturation."
//
// Model parameters per thread:
//   R — run length: useful cycles between consecutive remote references,
//   L — latency of a remote reference,
//   C — context switch cost.
//
// With h threads, processor efficiency (fraction of cycles doing useful
// work) is
//   linear region     (h < 1 + L/(R+C)):  E(h) = h * R / (R + C + L)
//   saturation region (h >= 1 + L/(R+C)): E(h) = R / (R + C)
// The transition region straddles the crossover; following [16] we report
// min(linear, saturation) as the deterministic envelope and expose the
// crossover point.
#pragma once

#include <cstdint>
#include <string>

namespace emx::model {

struct MultithreadingModel {
  double run_length = 12.0;     ///< R, cycles
  double latency = 30.0;        ///< L, cycles
  double switch_cost = 7.0;     ///< C, cycles

  /// Threads needed to fully hide latency: h_sat = 1 + L / (R + C).
  double saturation_threads() const;

  /// Processor efficiency in [0, 1] with h threads (deterministic
  /// envelope of the [16] model).
  double efficiency(double threads) const;

  /// Exposed (unoverlapped) latency per reference with h threads, cycles.
  double exposed_latency(double threads) const;

  /// Region classification for reporting.
  enum class Region { kLinear, kTransition, kSaturation };
  Region region(double threads) const;
  static const char* region_name(Region region);
};

}  // namespace emx::model
