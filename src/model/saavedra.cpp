#include "model/saavedra.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace emx::model {

double MultithreadingModel::saturation_threads() const {
  EMX_CHECK(run_length > 0 && switch_cost >= 0 && latency >= 0,
            "model parameters must be non-negative with positive run length");
  return 1.0 + latency / (run_length + switch_cost);
}

double MultithreadingModel::efficiency(double threads) const {
  EMX_CHECK(threads >= 1.0, "need at least one thread");
  const double linear = threads * run_length / (run_length + switch_cost + latency);
  const double saturated = run_length / (run_length + switch_cost);
  return std::min(linear, saturated);
}

double MultithreadingModel::exposed_latency(double threads) const {
  // Useful + switch cycles consumed by the other h-1 threads while this
  // thread's reference is outstanding reduce the exposed latency.
  const double hidden = (threads - 1.0) * (run_length + switch_cost);
  return std::max(0.0, latency - hidden);
}

MultithreadingModel::Region MultithreadingModel::region(double threads) const {
  const double h_sat = saturation_threads();
  if (threads < 0.9 * h_sat) return Region::kLinear;
  if (threads > 1.1 * h_sat) return Region::kSaturation;
  return Region::kTransition;
}

const char* MultithreadingModel::region_name(Region region) {
  switch (region) {
    case Region::kLinear:
      return "linear";
    case Region::kTransition:
      return "transition";
    case Region::kSaturation:
      return "saturation";
  }
  return "?";
}

}  // namespace emx::model
