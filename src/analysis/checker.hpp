// CheckContext: the machine-wide hub the instrumented simulator reports
// into when `--check` is armed.
//
// The ThreadEngine calls in at *issue* time for every attributed access
// and at every scheduling edge (invoke, reply resume, gate, barrier); the
// Machine calls in at every packet delivery and at end of run; Memory and
// SimContext call in through registered probes. The context fans those
// events out to the shadow memory (memcheck), the vector-clock race
// detector, the wait-for deadlock scan, and the sim-lint rules.
//
// Contract with the simulator: the checker is a pure observer. It never
// charges cycles, never schedules events, and never mutates simulated
// state, so arming it cannot change any reported cycle count. When it is
// not armed, none of this state exists and every hook site is a single
// null-pointer test.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/check_config.hpp"
#include "analysis/check_report.hpp"
#include "analysis/race_detector.hpp"
#include "analysis/shadow_memory.hpp"
#include "analysis/vector_clock.hpp"
#include "common/component.hpp"
#include "common/types.hpp"
#include "network/packet.hpp"
#include "runtime/check_hooks.hpp"
#include "sim/sim_context.hpp"

namespace emx::analysis {

/// Implements rt::CheckHooks (so the runtime never includes analysis/)
/// and is the "checker" component on armed machines (its shadow state is
/// a snapshot section and its findings flow into MachineReport::check).
class CheckContext final : public rt::CheckHooks, public Component {
 public:
  CheckContext(const CheckConfig& config, const sim::SimContext& sim,
               std::uint32_t proc_count, std::size_t memory_words,
               std::uint32_t reserved_words);

  CheckContext(const CheckContext&) = delete;
  CheckContext& operator=(const CheckContext&) = delete;

  const CheckConfig& config() const { return config_; }
  const CheckReport& report() const { return report_; }

  /// Entry ids below this limit belong to the runtime (barrier plumbing):
  /// their stores are exempt from the reserved-word check and their
  /// accesses from race recording. The Machine sets this right after
  /// registering its internal entries.
  void set_runtime_entry_limit(std::uint32_t limit) { runtime_entries_ = limit; }

  // ----- thread lifecycle (ThreadEngine) -----

  void on_thread_start(ProcId pe, ThreadId raw, std::uint32_t entry,
                       std::uint32_t hb_token) override;
  void on_thread_run(ProcId pe, ThreadId raw) override;  ///< entering the EXU
  void on_thread_end(ProcId pe, ThreadId raw) override;

  // ----- attributed accesses, recorded at issue time -----

  void on_local_read(ProcId pe, ThreadId raw, LocalAddr addr) override;
  void on_local_write(ProcId pe, ThreadId raw, LocalAddr addr) override;
  void on_remote_read(ProcId pe, ThreadId raw, ProcId tproc,
                      LocalAddr taddr) override;
  void on_remote_write(ProcId pe, ThreadId raw, ProcId tproc,
                       LocalAddr taddr) override;
  void on_block_read(ProcId pe, ThreadId raw, ProcId sproc, LocalAddr saddr,
                     LocalAddr dest, std::uint32_t len) override;
  /// Split-phase suspension.
  void on_read_suspend(ProcId pe, ThreadId raw) override;

  // ----- frame-region annotations (ThreadApi frame_mark / frame_drop) -----

  void on_frame_mark(ProcId pe, ThreadId raw, LocalAddr base,
                     std::uint32_t len) override;
  void on_frame_drop(ProcId pe, ThreadId raw, LocalAddr base) override;

  // ----- happens-before edges the runtime materializes -----

  /// Invoke edge, sender side: snapshots the spawner's clock and returns
  /// the token the kInvoke packet carries to the new thread (0 = none).
  std::uint32_t on_spawn(ProcId pe, ThreadId raw) override;
  // Gates are named by OrderGate::uid(), never by address: addresses can
  // be reused within one run and would leak stale clock/inside state.
  void on_gate_pass(ProcId pe, ThreadId raw, std::uint64_t gate) override;
  void on_gate_block(ProcId pe, ThreadId raw, std::uint64_t gate,
                     std::uint32_t index) override;
  void on_gate_wake(ProcId pe, ThreadId raw) override;
  void on_gate_advance(ProcId pe, ThreadId raw, std::uint64_t gate) override;
  void on_barrier_join(ProcId pe, ThreadId raw) override;
  void on_barrier_pass(ProcId pe, ThreadId raw) override;

  // ----- probes -----

  /// Unattributed store seen at the Memory bus (host pokes, DMA landings).
  void on_raw_write(ProcId pe, LocalAddr addr, std::uint32_t words);
  /// Every packet ejected at PE `at` (Machine delivery callback).
  void on_deliver(ProcId at, const net::Packet& p);
  /// Every EXU cycle charge (sanity: wrapped-negative amounts).
  void on_charge(ProcId pe, Cycle cycles) override;
  /// SimContext caught an event scheduled into the past.
  void on_late_schedule(Cycle target, Cycle now);

  // ----- end of run (Machine) -----

  /// The event queue drained: scan suspended threads for a wait cycle.
  void on_quiesce();
  /// After liveness checks: report frame regions never dropped.
  void leak_scan();
  /// True once on_quiesce reported stuck threads — the Machine then skips
  /// its drained-with-live-threads panic so diagnostics reach the user.
  bool stuck_reported() const { return stuck_reported_; }

  /// Serializes the checker's observable state: the report, every logical
  /// thread's clock and blocking state, gate and barrier-epoch clocks,
  /// and the lint dedup sets — unordered containers sorted first. Shadow
  /// memory and race-detector cells are summarized by their activity
  /// counters inside the report (their full state is derived from the
  /// access stream, which replay regenerates).
  void save(snapshot::Serializer& s) const;

  // --- Component ---
  const char* component_name() const override { return "checker"; }
  void save_state(ser::Serializer& s) const override { save(s); }
  void contribute(MachineReport& report) const override;

 private:
  enum class Block : std::uint8_t { kNone, kGate, kRead, kBarrier };

  struct ThreadState {
    LogicalTid logical = kNoLogicalTid;
    ProcId pe = 0;
    ThreadId raw = kInvalidThread;
    std::uint32_t entry = 0;
    bool runtime = false;  ///< barrier-plumbing thread
    bool alive = false;
    VectorClock vc;
    std::uint32_t clk = 0;
    std::uint32_t episode = 0;  ///< barrier episodes passed
    Block block = Block::kNone;
    std::uint64_t gate = 0;        ///< dense gate id when block == kGate
    std::uint32_t gate_index = 0;  ///< when block == kGate
    Origin blocked_at;
  };

  struct GateState {
    VectorClock vc;                   ///< released by every gate_advance
    std::vector<LogicalTid> inside;   ///< passed the gate, not yet advanced
  };

  ThreadState& thread(ProcId pe, ThreadId raw);
  /// Raw OrderGate uids come from a process-global counter, so their
  /// values depend on earlier machines in the same process. Translated
  /// to first-seen dense ids (>= 1) at the on_gate_* boundary, gate
  /// identity — and everything save() emits — is a pure function of this
  /// run's execution, which checkpoint verification requires.
  std::uint64_t gate_id(std::uint64_t uid);
  void tick(ThreadState& t);
  void acquire(ThreadState& t, const VectorClock& from);
  Origin origin_of(const ThreadState& t) const;
  VectorClock& barrier_epoch(std::uint32_t episode);
  void record_read(ThreadState& t, ProcId tproc, LocalAddr taddr);
  void record_write(ThreadState& t, ProcId tproc, LocalAddr taddr);
  bool lint_once(CheckKind kind, std::uint64_t key);

  CheckConfig config_;
  const sim::SimContext& sim_;
  std::uint32_t proc_count_;
  std::uint32_t reserved_words_;
  std::uint32_t runtime_entries_ = 0;
  CheckReport report_;

  std::unique_ptr<ShadowMemory> shadow_;  ///< memcheck only
  std::unique_ptr<RaceDetector> races_;   ///< race only

  std::vector<ThreadState> threads_;            ///< indexed by LogicalTid
  std::vector<std::vector<LogicalTid>> slots_;  ///< per-PE raw id -> logical
  std::vector<VectorClock> spawn_tokens_;       ///< kInvoke hb_token payloads
  std::unordered_map<std::uint64_t, std::uint64_t> gate_ids_;  ///< uid -> dense
  std::unordered_map<std::uint64_t, GateState> gates_;  ///< by dense gate id
  std::vector<VectorClock> barrier_epochs_;     ///< join accumulators

  // sim-lint state
  std::unordered_map<std::uint64_t, Cycle> fifo_last_;  ///< (src,dst,pri)
  std::unordered_set<std::uint64_t> lint_reported_;

  bool stuck_reported_ = false;
};

}  // namespace emx::analysis
