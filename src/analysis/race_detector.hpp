// FastTrack-style data-race detection over the global address space.
//
// Each shadow cell remembers the last write epoch and the reads since
// that write. An access races when the remembered access does not
// happen-before the current thread's clock. Accesses are recorded at
// *issue* time in the ThreadEngine: any two issues ordered by
// happens-before are also ordered in simulated time (the runtime's edges
// all go forward in time), so issue order is a sound observation order
// and, unlike delivery order, is independent of network jitter.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/check_report.hpp"
#include "analysis/vector_clock.hpp"
#include "common/types.hpp"

namespace emx::analysis {

class RaceDetector {
 public:
  explicit RaceDetector(CheckReport& report) : report_(report) {}

  /// Records a read of packed global address `addr` by `tid` whose clock
  /// is `vc`; `origin` locates the access for diagnostics.
  void on_read(LogicalTid tid, const VectorClock& vc, Word addr,
               const Origin& origin);

  /// Records a write; reports against the previous write and every
  /// unordered read since it.
  void on_write(LogicalTid tid, const VectorClock& vc, Word addr,
                const Origin& origin);

  std::size_t cells() const { return cells_.size(); }

 private:
  struct Access {
    Epoch epoch;
    Origin origin;
  };
  struct ShadowCell {
    Access write;
    bool has_write = false;
    std::vector<Access> reads;  ///< reads since the last write, per thread
  };

  /// One report per (kind, address); later hits only bump the count.
  void report_race(CheckKind kind, Word addr, const Origin& current,
                   const Origin& previous);

  CheckReport& report_;
  std::unordered_map<Word, ShadowCell> cells_;
  std::unordered_set<std::uint64_t> reported_;
};

}  // namespace emx::analysis
