// Sparse vector clocks over *logical* thread ids.
//
// FramePool recycles ThreadIds, so the race detector numbers every
// activation with a fresh logical id and keys clocks on those. Clocks are
// sparse maps: a fine-grain run creates thousands of short-lived threads,
// and each one synchronizes with only a handful of peers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serializer.hpp"

namespace emx::analysis {

/// Logical (never-reused) thread number.
using LogicalTid = std::uint32_t;

inline constexpr LogicalTid kNoLogicalTid = 0xFFFFFFFFu;

/// One component of a vector clock: thread `tid` at its local time `clk`.
struct Epoch {
  LogicalTid tid = kNoLogicalTid;
  std::uint32_t clk = 0;
};

class VectorClock {
 public:
  /// The component for `tid` (0 if never set — clocks start at 0).
  std::uint32_t of(LogicalTid tid) const {
    const auto it = clocks_.find(tid);
    return it == clocks_.end() ? 0 : it->second;
  }

  void set(LogicalTid tid, std::uint32_t clk) { clocks_[tid] = clk; }

  /// Pointwise max with `other`. Returns the number of components raised
  /// (so callers can count real happens-before information flow).
  std::uint32_t join(const VectorClock& other) {
    std::uint32_t raised = 0;
    for (const auto& [tid, clk] : other.clocks_) {
      auto& mine = clocks_[tid];
      if (clk > mine) {
        mine = clk;
        ++raised;
      }
    }
    return raised;
  }

  std::size_t size() const { return clocks_.size(); }

  /// Serializes components sorted by tid (the map itself is unordered).
  void save(snapshot::Serializer& s) const {
    std::vector<std::pair<LogicalTid, std::uint32_t>> sorted(clocks_.begin(),
                                                             clocks_.end());
    std::sort(sorted.begin(), sorted.end());
    s.u32(static_cast<std::uint32_t>(sorted.size()));
    for (const auto& [tid, clk] : sorted) {
      s.u32(tid);
      s.u32(clk);
    }
  }

 private:
  std::unordered_map<LogicalTid, std::uint32_t> clocks_;
};

/// True if the access at `e` happened-before everything at-or-after `vc`.
inline bool happens_before(const Epoch& e, const VectorClock& vc) {
  return e.clk <= vc.of(e.tid);
}

}  // namespace emx::analysis
