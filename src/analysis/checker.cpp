#include "analysis/checker.hpp"

#include <sstream>

#include "analysis/wait_graph.hpp"
#include "common/assert.hpp"
#include "core/instrumentation.hpp"
#include "runtime/global_addr.hpp"

namespace emx::analysis {
namespace {

/// A cycle charge at or above this is a wrapped-negative value: no real
/// instruction sequence runs for 2^40 cycles (~15 hours of EMC-Y time).
constexpr Cycle kChargeSanityLimit = Cycle{1} << 40;

}  // namespace

CheckContext::CheckContext(const CheckConfig& config,
                           const sim::SimContext& sim,
                           std::uint32_t proc_count, std::size_t memory_words,
                           std::uint32_t reserved_words)
    : config_(config),
      sim_(sim),
      proc_count_(proc_count),
      reserved_words_(reserved_words),
      slots_(proc_count) {
  EMX_CHECK(proc_count <= (1u << 24),
            "checker packs PE ids into 24-bit lint-dedup key fields");
  if (config_.memcheck) {
    shadow_ = std::make_unique<ShadowMemory>(proc_count, memory_words,
                                             reserved_words, report_);
  }
  if (config_.race) races_ = std::make_unique<RaceDetector>(report_);
}

// -------------------------------------------------------------- thread table

CheckContext::ThreadState& CheckContext::thread(ProcId pe, ThreadId raw) {
  auto& slot = slots_[pe];
  EMX_DCHECK(raw < slot.size() && slot[raw] != kNoLogicalTid,
             "checker hook for an untracked thread");
  return threads_[slot[raw]];
}

void CheckContext::tick(ThreadState& t) {
  ++t.clk;
  t.vc.set(t.logical, t.clk);
}

void CheckContext::acquire(ThreadState& t, const VectorClock& from) {
  t.vc.join(from);
  ++report_.hb_edges;
}

Origin CheckContext::origin_of(const ThreadState& t) const {
  return Origin{t.pe, t.raw, sim_.now()};
}

VectorClock& CheckContext::barrier_epoch(std::uint32_t episode) {
  if (episode >= barrier_epochs_.size()) barrier_epochs_.resize(episode + 1);
  return barrier_epochs_[episode];
}

void CheckContext::on_thread_start(ProcId pe, ThreadId raw, std::uint32_t entry,
                                   std::uint32_t hb_token) {
  const auto logical = static_cast<LogicalTid>(threads_.size());
  ThreadState t;
  t.logical = logical;
  t.pe = pe;
  t.raw = raw;
  t.entry = entry;
  t.runtime = entry < runtime_entries_;
  t.alive = true;
  t.clk = 1;
  t.vc.set(logical, 1);
  threads_.push_back(std::move(t));

  auto& slot = slots_[pe];
  if (raw >= slot.size()) slot.resize(raw + 1, kNoLogicalTid);
  slot[raw] = logical;  // FramePool recycles raw ids; latest owner wins

  if (hb_token != 0) {
    EMX_DCHECK(hb_token <= spawn_tokens_.size(), "bad spawn hb token");
    acquire(threads_[logical], spawn_tokens_[hb_token - 1]);
  }
}

void CheckContext::on_thread_run(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  // Gate wakes clear their block in on_gate_wake (they also need the
  // gate's clock); everything else clears here on re-entering the EXU.
  if (t.block != Block::kGate) t.block = Block::kNone;
}

void CheckContext::on_thread_end(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  t.alive = false;
  t.block = Block::kNone;
}

// ------------------------------------------------------------------ accesses

void CheckContext::record_read(ThreadState& t, ProcId tproc, LocalAddr taddr) {
  if (races_ == nullptr || t.runtime || taddr < reserved_words_) return;
  races_->on_read(t.logical, t.vc, rt::pack(rt::GlobalAddr{tproc, taddr}),
                  origin_of(t));
}

void CheckContext::record_write(ThreadState& t, ProcId tproc, LocalAddr taddr) {
  if (races_ == nullptr || t.runtime || taddr < reserved_words_) return;
  races_->on_write(t.logical, t.vc, rt::pack(rt::GlobalAddr{tproc, taddr}),
                   origin_of(t));
}

void CheckContext::on_local_read(ProcId pe, ThreadId raw, LocalAddr addr) {
  ThreadState& t = thread(pe, raw);
  if (shadow_ != nullptr) shadow_->on_read(pe, addr, origin_of(t));
  record_read(t, pe, addr);
}

void CheckContext::on_local_write(ProcId pe, ThreadId raw, LocalAddr addr) {
  ThreadState& t = thread(pe, raw);
  if (shadow_ != nullptr) shadow_->on_write(pe, addr, origin_of(t), t.runtime);
  record_write(t, pe, addr);
}

void CheckContext::on_remote_read(ProcId pe, ThreadId raw, ProcId tproc,
                                  LocalAddr taddr) {
  ThreadState& t = thread(pe, raw);
  if (shadow_ != nullptr) shadow_->on_read(tproc, taddr, origin_of(t));
  record_read(t, tproc, taddr);
}

void CheckContext::on_remote_write(ProcId pe, ThreadId raw, ProcId tproc,
                                   LocalAddr taddr) {
  ThreadState& t = thread(pe, raw);
  if (shadow_ != nullptr) shadow_->on_write(tproc, taddr, origin_of(t), t.runtime);
  record_write(t, tproc, taddr);
}

void CheckContext::on_block_read(ProcId pe, ThreadId raw, ProcId sproc,
                                 LocalAddr saddr, LocalAddr dest,
                                 std::uint32_t len) {
  ThreadState& t = thread(pe, raw);
  for (std::uint32_t i = 0; i < len; ++i) {
    if (shadow_ != nullptr) {
      shadow_->on_read(sproc, saddr + i, origin_of(t));
      // The landing words become defined when the block arrives; the
      // thread stays suspended until then, so defining them at issue is
      // equivalent for every access it can make.
      shadow_->on_write(pe, dest + i, origin_of(t), t.runtime);
    }
    record_read(t, sproc, saddr + i);
    record_write(t, pe, dest + i);
  }
}

void CheckContext::on_read_suspend(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  t.block = Block::kRead;
  t.blocked_at = origin_of(t);
}

// ------------------------------------------------------- frame annotations

void CheckContext::on_frame_mark(ProcId pe, ThreadId raw, LocalAddr base,
                                 std::uint32_t len) {
  if (shadow_ == nullptr) return;
  shadow_->frame_mark(pe, base, len, origin_of(thread(pe, raw)));
}

void CheckContext::on_frame_drop(ProcId pe, ThreadId raw, LocalAddr base) {
  if (shadow_ == nullptr) return;
  shadow_->frame_drop(pe, base, origin_of(thread(pe, raw)));
}

// -------------------------------------------------------------- hb edges
//
// Release hooks publish the releaser's clock *before* ticking it: the
// published snapshot must cover everything the releaser did up to the
// release and nothing after. Plain accesses don't tick, so if the tick
// came first the releaser's post-release accesses would share the
// published epoch and the acquirer would appear ordered after them —
// silently masking parent-after-spawn, advancer-after-advance, and
// post-barrier races.

std::uint32_t CheckContext::on_spawn(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  spawn_tokens_.push_back(t.vc);
  tick(t);
  return static_cast<std::uint32_t>(spawn_tokens_.size());
}

std::uint64_t CheckContext::gate_id(std::uint64_t uid) {
  const auto [it, inserted] = gate_ids_.try_emplace(uid, gate_ids_.size() + 1);
  return it->second;
}

void CheckContext::on_gate_pass(ProcId pe, ThreadId raw, std::uint64_t gate) {
  ThreadState& t = thread(pe, raw);
  GateState& g = gates_[gate_id(gate)];
  acquire(t, g.vc);
  g.inside.push_back(t.logical);
}

void CheckContext::on_gate_block(ProcId pe, ThreadId raw, std::uint64_t gate,
                                 std::uint32_t index) {
  ThreadState& t = thread(pe, raw);
  t.block = Block::kGate;
  t.gate = gate_id(gate);
  t.gate_index = index;
  t.blocked_at = origin_of(t);
}

void CheckContext::on_gate_wake(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  EMX_DCHECK(t.block == Block::kGate, "gate wake for a non-gate-blocked thread");
  GateState& g = gates_[t.gate];
  acquire(t, g.vc);
  g.inside.push_back(t.logical);
  t.block = Block::kNone;
  t.gate = 0;
}

void CheckContext::on_gate_advance(ProcId pe, ThreadId raw, std::uint64_t gate) {
  ThreadState& t = thread(pe, raw);
  GateState& g = gates_[gate_id(gate)];
  g.vc.join(t.vc);
  tick(t);
  for (auto it = g.inside.begin(); it != g.inside.end(); ++it) {
    if (*it == t.logical) {
      g.inside.erase(it);
      break;
    }
  }
}

void CheckContext::on_barrier_join(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  barrier_epoch(t.episode).join(t.vc);
  tick(t);
  t.block = Block::kBarrier;
  t.blocked_at = origin_of(t);
}

void CheckContext::on_barrier_pass(ProcId pe, ThreadId raw) {
  ThreadState& t = thread(pe, raw);
  // A machine-wide release needs every participant's join in this
  // episode's accumulator, so acquiring it is a sound barrier edge.
  acquire(t, barrier_epoch(t.episode));
  ++t.episode;
  t.block = Block::kNone;
}

// ---------------------------------------------------------------- probes

void CheckContext::on_raw_write(ProcId pe, LocalAddr addr, std::uint32_t words) {
  if (shadow_ == nullptr || !shadow_->pe_tracked(pe)) return;
  shadow_->on_raw_write(pe, addr, words);
}

bool CheckContext::lint_once(CheckKind kind, std::uint64_t key) {
  const std::uint64_t full =
      (static_cast<std::uint64_t>(kind) << 56) | (key & 0x00FFFFFFFFFFFFFFull);
  if (lint_reported_.insert(full).second) return true;
  ++report_.counts[static_cast<std::size_t>(kind)];
  return false;
}

void CheckContext::on_deliver(ProcId at, const net::Packet& p) {
  if (!config_.lint) return;
  ++report_.packets_linted;

  ProcId expected = p.dst;
  switch (p.kind) {
    case net::PacketKind::kRemoteReadReq:
    case net::PacketKind::kBlockReadReq:
    case net::PacketKind::kRemoteWrite:
    case net::PacketKind::kRemoteReadReply:
    case net::PacketKind::kBlockReadReply:
      // Service packets name their target in the address word; replies
      // carry the requester's continuation address there.
      expected = rt::unpack(p.addr).proc;
      break;
    case net::PacketKind::kInvoke:
    case net::PacketKind::kLocalWake:
    case net::PacketKind::kAck:
      break;  // addr is an entry id / req_seq echo / unused: only p.dst applies
  }
  if (at != p.dst || at != expected) {
    // at:24 | src:24 — PE ids fit 24 bits (asserted at construction).
    if (lint_once(CheckKind::kMisroutedPacket,
                  (static_cast<std::uint64_t>(at) << 24) | p.src)) {
      Diagnostic d;
      d.kind = CheckKind::kMisroutedPacket;
      d.origin = Origin{at, kInvalidThread, sim_.now()};
      d.addr = p.addr;
      std::ostringstream os;
      os << to_string(p.kind) << " from pe" << p.src << " for pe"
         << (at != p.dst ? p.dst : expected) << " ejected at pe" << at;
      d.message = os.str();
      report_.add(std::move(d));
    }
    return;
  }

  // FIFO non-overtaking: the fabric must deliver same-(src,dst,priority)
  // packets in issue order (the runtime's write->invoke ordering and the
  // retry protocol both rely on it).
  const std::uint64_t key = (static_cast<std::uint64_t>(p.src) << 33) |
                            (static_cast<std::uint64_t>(p.dst) << 1) |
                            static_cast<std::uint64_t>(p.priority);
  auto [it, inserted] = fifo_last_.try_emplace(key, p.issue_cycle);
  if (!inserted) {
    if (p.issue_cycle < it->second) {
      if (lint_once(CheckKind::kFifoOvertake, key)) {
        Diagnostic d;
        d.kind = CheckKind::kFifoOvertake;
        d.origin = Origin{at, kInvalidThread, sim_.now()};
        d.addr = p.addr;
        std::ostringstream os;
        os << to_string(p.kind) << " pe" << p.src << "->pe" << p.dst
           << " issued @" << p.issue_cycle << " delivered after one issued @"
           << it->second;
        d.message = os.str();
        report_.add(std::move(d));
      }
    } else {
      it->second = p.issue_cycle;
    }
  }
}

void CheckContext::on_charge(ProcId pe, Cycle cycles) {
  if (!config_.lint || cycles < kChargeSanityLimit) return;
  if (!lint_once(CheckKind::kNegativeCharge, pe)) return;
  Diagnostic d;
  d.kind = CheckKind::kNegativeCharge;
  d.origin = Origin{pe, kInvalidThread, sim_.now()};
  std::ostringstream os;
  os << "EXU charge of " << cycles
     << " cycles (>= 2^40) — almost certainly a wrapped negative amount";
  d.message = os.str();
  report_.add(std::move(d));
}

void CheckContext::on_late_schedule(Cycle target, Cycle now) {
  if (!config_.lint) return;
  Diagnostic d;
  d.kind = CheckKind::kLateEvent;
  d.origin = Origin{0, kInvalidThread, now};
  std::ostringstream os;
  os << "event scheduled at cycle " << target << " with the clock already at "
     << now << " (clamped to now)";
  d.message = os.str();
  report_.add(std::move(d));
}

// ------------------------------------------------------------- end of run

void CheckContext::on_quiesce() {
  if (!config_.deadlock) return;
  std::vector<LogicalTid> stuck;
  for (const ThreadState& t : threads_) {
    if (t.alive && t.block != Block::kNone) stuck.push_back(t.logical);
  }
  if (stuck.empty()) return;
  stuck_reported_ = true;

  // Lock-style wait-for edges: a thread blocked at a gate waits for the
  // threads currently inside it (they hold the "advance" obligation).
  WaitGraph graph;
  for (const LogicalTid tid : stuck) {
    const ThreadState& t = threads_[tid];
    if (t.block != Block::kGate) continue;
    const auto it = gates_.find(t.gate);
    if (it == gates_.end()) continue;
    for (const LogicalTid holder : it->second.inside) {
      if (holder != tid && threads_[holder].alive) graph.add_edge(tid, holder);
    }
  }

  const std::vector<LogicalTid> cycle = graph.find_cycle();
  if (!cycle.empty()) {
    Diagnostic d;
    d.kind = CheckKind::kDeadlock;
    d.origin = threads_[cycle.front()].blocked_at;
    std::ostringstream os;
    os << "circular wait: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const ThreadState& t = threads_[cycle[i]];
      os << "t" << t.raw << "@pe" << t.pe << " (gate index " << t.gate_index
         << ") -> ";
    }
    const ThreadState& first = threads_[cycle.front()];
    os << "t" << first.raw << "@pe" << first.pe;
    d.message = os.str();
    report_.add(std::move(d));
    return;
  }

  for (const LogicalTid tid : stuck) {
    const ThreadState& t = threads_[tid];
    Diagnostic d;
    d.kind = CheckKind::kStuckThread;
    d.origin = t.blocked_at;
    std::ostringstream os;
    os << "thread suspended at quiescence on ";
    switch (t.block) {
      case Block::kGate: os << "gate index " << t.gate_index; break;
      case Block::kRead: os << "a split-phase read that never replied"; break;
      case Block::kBarrier: os << "the iteration barrier"; break;
      case Block::kNone: break;
    }
    d.message = os.str();
    report_.add(std::move(d));
  }
}

void CheckContext::leak_scan() {
  if (shadow_ == nullptr || stuck_reported_) return;
  shadow_->leak_scan();
}

void CheckContext::save(snapshot::Serializer& s) const {
  report_.save(s);
  s.boolean(stuck_reported_);
  s.u32(static_cast<std::uint32_t>(threads_.size()));
  for (const ThreadState& t : threads_) {
    s.u32(t.logical);
    s.u32(t.pe);
    s.u32(t.raw);
    s.u32(t.entry);
    s.boolean(t.runtime);
    s.boolean(t.alive);
    t.vc.save(s);
    s.u32(t.clk);
    s.u32(t.episode);
    s.u8(static_cast<std::uint8_t>(t.block));
    s.u64(t.gate);
    s.u32(t.gate_index);
    s.u32(t.blocked_at.proc);
    s.u32(t.blocked_at.thread);
    s.u64(t.blocked_at.cycle);
  }
  s.u32(static_cast<std::uint32_t>(spawn_tokens_.size()));
  for (const VectorClock& vc : spawn_tokens_) vc.save(s);
  std::vector<std::uint64_t> gate_ids;
  gate_ids.reserve(gates_.size());
  for (const auto& [uid, gate] : gates_) gate_ids.push_back(uid);
  std::sort(gate_ids.begin(), gate_ids.end());
  s.u32(static_cast<std::uint32_t>(gate_ids.size()));
  for (std::uint64_t uid : gate_ids) {
    const GateState& gate = gates_.at(uid);
    s.u64(uid);
    gate.vc.save(s);
    s.u32(static_cast<std::uint32_t>(gate.inside.size()));
    for (LogicalTid tid : gate.inside) s.u32(tid);
  }
  s.u32(static_cast<std::uint32_t>(barrier_epochs_.size()));
  for (const VectorClock& vc : barrier_epochs_) vc.save(s);
  std::vector<std::pair<std::uint64_t, Cycle>> fifo(fifo_last_.begin(),
                                                    fifo_last_.end());
  std::sort(fifo.begin(), fifo.end());
  s.u32(static_cast<std::uint32_t>(fifo.size()));
  for (const auto& [key, cycle] : fifo) {
    s.u64(key);
    s.u64(cycle);
  }
  std::vector<std::uint64_t> linted(lint_reported_.begin(),
                                    lint_reported_.end());
  std::sort(linted.begin(), linted.end());
  s.u32(static_cast<std::uint32_t>(linted.size()));
  for (std::uint64_t key : linted) s.u64(key);
}

void CheckContext::contribute(MachineReport& report) const {
  report.check_enabled = true;
  report.check = report_;
}

}  // namespace emx::analysis
