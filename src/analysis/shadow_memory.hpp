// Valgrind-style shadow memory over each PE's local RAM.
//
// Addressability follows memcheck's client-request model: statically
// initialized RAM (the host-loaded arrays apps operate on) is treated
// like C globals — always addressable, always defined. Activation-frame
// regions are the "heap": a thread announces one with frame_mark
// (MALLOCLIKE_BLOCK) and retires it with frame_drop (FREELIKE_BLOCK).
// Inside a live region every word carries a definedness bit plus the
// origin of its defining store; dropped regions stay shadowed so later
// touches report use-after-free with the drop site attached.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "analysis/check_report.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"

namespace emx::analysis {

class ShadowMemory {
 public:
  ShadowMemory(std::uint32_t proc_count, std::size_t memory_words,
               std::uint32_t reserved_words, CheckReport& report)
      : pes_(proc_count),
        memory_words_(memory_words),
        reserved_words_(reserved_words),
        report_(report) {
    EMX_CHECK(proc_count <= (1u << 24),
              "shadow memory packs PE ids into a 24-bit dedup-key field");
  }

  /// A thread declares [base, base+len) an activation-frame region.
  void frame_mark(ProcId pe, LocalAddr base, std::uint32_t len,
                  const Origin& origin);

  /// A thread retires the region previously marked at `base`.
  void frame_drop(ProcId pe, LocalAddr base, const Origin& origin);

  /// An attributed load of one word. Reports uninit/use-after-free/oob.
  void on_read(ProcId pe, LocalAddr addr, const Origin& origin);

  /// An attributed store. `runtime` suppresses the reserved-low-words
  /// check for the runtime's own bookkeeping stores (barrier flags).
  void on_write(ProcId pe, LocalAddr addr, const Origin& origin,
                bool runtime);

  /// An unattributed store observed at the Memory bus (host pokes, DMA
  /// block-read landings): defines the words without an origin.
  void on_raw_write(ProcId pe, LocalAddr addr, std::uint32_t words);

  /// True if this PE has ever marked a frame region (lets the raw-write
  /// probe stay O(1) for PEs with nothing to track).
  bool pe_tracked(ProcId pe) const { return !pes_[pe].frames.empty(); }

  /// End-of-run sweep: any region still alive is reported as leaked.
  void leak_scan();

 private:
  struct Frame {
    LocalAddr base = 0;
    std::uint32_t len = 0;
    bool alive = true;
    Origin marked;                 ///< where frame_mark ran
    Origin dropped;                ///< where frame_drop ran (if !alive)
    std::vector<std::uint8_t> defined;
    std::vector<Origin> writer;    ///< defining store per word
  };
  struct PeShadow {
    std::map<LocalAddr, Frame> frames;  ///< keyed by base, non-overlapping
  };

  /// The frame whose live-time region contains `addr`, else nullptr.
  Frame* find(ProcId pe, LocalAddr addr);

  bool already(CheckKind kind, ProcId pe, LocalAddr addr);
  void report(CheckKind kind, ProcId pe, LocalAddr addr, const Origin& origin,
              const Origin* aux, const std::string& message);

  std::vector<PeShadow> pes_;
  std::size_t memory_words_;
  std::uint32_t reserved_words_;
  CheckReport& report_;
  std::unordered_set<std::uint64_t> reported_;
};

}  // namespace emx::analysis
