// A checker finding: what went wrong, where, and on whose behalf.
//
// Every diagnostic carries an origin — the (PE, thread, cycle) at which
// the offending access or operation executed — in the spirit of
// memcheck's --track-origins. Where a second site matters (where a frame
// was marked or dropped, where the conflicting access ran) it travels as
// the auxiliary origin.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace emx::analysis {

enum class CheckKind : std::uint8_t {
  // --- memcheck (shadow memory over proc::Memory frame regions) ---
  kUninitRead,      ///< read of a frame word never written since its mark
  kUseAfterFree,    ///< access to a dropped (freed) frame region
  kDoubleFrameFree, ///< frame_drop of an already-dropped region
  kFrameLeak,       ///< frame region still marked at end of run
  kReservedStore,   ///< app store into the runtime-reserved low words
  kOobAccess,       ///< local access beyond the PE's memory
  kBadFrameOp,      ///< malformed mark/drop (overlap, zero length, no frame)
  // --- vector-clock race detection on the global address space ---
  kWriteReadRace,   ///< unsynchronized write observed by a read
  kReadWriteRace,   ///< unsynchronized read overwritten by a write
  kWriteWriteRace,  ///< two unsynchronized writes
  // --- quiescence-time deadlock detection ---
  kDeadlock,        ///< cycle in the wait-for graph; message names it
  kStuckThread,     ///< suspended thread at quiescence, no cycle found
  // --- sim-lint (simulator invariants) ---
  kLateEvent,       ///< event scheduled into the simulated past
  kFifoOvertake,    ///< same-pair packets delivered out of issue order
  kNegativeCharge,  ///< absurd (wrapped-negative) cycle charge
  kMisroutedPacket, ///< packet ejected at a PE other than its destination
};

inline constexpr std::size_t kCheckKindCount = 16;

const char* to_string(CheckKind kind);

/// Where something happened. `thread` is the engine-local thread id
/// (kInvalidThread for host-side or un-attributed sites).
struct Origin {
  ProcId proc = 0;
  ThreadId thread = kInvalidThread;
  Cycle cycle = 0;

  std::string describe() const;
};

struct Diagnostic {
  CheckKind kind = CheckKind::kUninitRead;
  Origin origin;       ///< the offending access / operation
  Origin aux;          ///< related site (mark/drop/conflicting access)
  bool has_aux = false;
  Word addr = 0;       ///< packed global address, when address-shaped
  std::string message;

  std::string describe() const;
};

}  // namespace emx::analysis
