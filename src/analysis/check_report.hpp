// Aggregated checker results surfaced through MachineReport.
//
// Diagnostics are deduplicated at the detector (one per defect site) and
// capped here so a pathological program cannot allocate without bound;
// counts keep incrementing past the cap.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "common/serializer.hpp"

namespace emx::analysis {

struct CheckReport {
  /// Findings by kind (indexed by CheckKind).
  std::array<std::uint64_t, kCheckKindCount> counts{};
  /// Retained diagnostics, in discovery order, at most kMaxDiagnostics.
  std::vector<Diagnostic> diagnostics;
  /// Findings dropped once `diagnostics` hit the cap (still counted).
  std::uint64_t suppressed = 0;

  // --- checker activity, for "did it actually look" assurance ---
  std::uint64_t reads_checked = 0;    ///< attributed loads seen by memcheck
  std::uint64_t writes_checked = 0;   ///< attributed stores seen by memcheck
  std::uint64_t frames_tracked = 0;   ///< frame regions marked over the run
  std::uint64_t accesses_raced = 0;   ///< accesses run through vector clocks
  std::uint64_t hb_edges = 0;         ///< happens-before joins performed
  std::uint64_t packets_linted = 0;   ///< deliveries inspected by sim-lint

  static constexpr std::size_t kMaxDiagnostics = 256;

  std::uint64_t count(CheckKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto n : counts) sum += n;
    return sum;
  }
  bool clean() const { return total() == 0; }

  /// Records a finding: bumps its count and retains it if under the cap.
  void add(Diagnostic d);

  std::string summary_text() const;

  void save(snapshot::Serializer& s) const {
    for (std::uint64_t n : counts) s.u64(n);
    s.u64(suppressed);
    s.u64(reads_checked);
    s.u64(writes_checked);
    s.u64(frames_tracked);
    s.u64(accesses_raced);
    s.u64(hb_edges);
    s.u64(packets_linted);
    s.u32(static_cast<std::uint32_t>(diagnostics.size()));
    for (const Diagnostic& d : diagnostics) {
      s.u8(static_cast<std::uint8_t>(d.kind));
      for (const Origin* o : {&d.origin, &d.aux}) {
        s.u32(o->proc);
        s.u32(o->thread);
        s.u64(o->cycle);
      }
      s.boolean(d.has_aux);
      s.u32(d.addr);
      s.str(d.message);
    }
  }
};

}  // namespace emx::analysis
