#include "analysis/shadow_memory.hpp"

#include <sstream>

#include "runtime/global_addr.hpp"

namespace emx::analysis {
namespace {

std::string at_addr(ProcId pe, LocalAddr addr) {
  std::ostringstream os;
  os << "pe" << pe << ":[" << addr << "]";
  return os.str();
}

}  // namespace

ShadowMemory::Frame* ShadowMemory::find(ProcId pe, LocalAddr addr) {
  auto& frames = pes_[pe].frames;
  auto it = frames.upper_bound(addr);
  if (it == frames.begin()) return nullptr;
  --it;
  Frame& f = it->second;
  return addr < f.base + f.len ? &f : nullptr;
}

bool ShadowMemory::already(CheckKind kind, ProcId pe, LocalAddr addr) {
  // kind:8 | pe:24 | addr:32 — pe < 2^24 is asserted at construction.
  const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 56) |
                            (static_cast<std::uint64_t>(pe) << 32) |
                            static_cast<std::uint64_t>(addr);
  if (reported_.insert(key).second) return false;
  ++report_.counts[static_cast<std::size_t>(kind)];
  return true;
}

void ShadowMemory::report(CheckKind kind, ProcId pe, LocalAddr addr,
                          const Origin& origin, const Origin* aux,
                          const std::string& message) {
  Diagnostic d;
  d.kind = kind;
  d.origin = origin;
  if (aux != nullptr) {
    d.aux = *aux;
    d.has_aux = true;
  }
  // Address-shaped diagnostics carry the packed global address (an
  // out-of-range local part is truncated to the address bits).
  d.addr = rt::pack(rt::GlobalAddr{pe, addr});
  d.message = message;
  report_.add(std::move(d));
}

void ShadowMemory::frame_mark(ProcId pe, LocalAddr base, std::uint32_t len,
                              const Origin& origin) {
  ++report_.frames_tracked;
  if (len == 0 || base + len > memory_words_ || base + len < base) {
    if (!already(CheckKind::kBadFrameOp, pe, base)) {
      report(CheckKind::kBadFrameOp, pe, base, origin, nullptr,
             "frame_mark with empty or out-of-memory region at " +
                 at_addr(pe, base));
    }
    return;
  }
  // Reusing the RAM of a dropped frame is normal (FramePool recycles);
  // forget any fully-retired shadow the new region overlaps. Overlapping
  // a *live* frame is a bug in the program's frame annotations.
  auto& frames = pes_[pe].frames;
  for (auto it = frames.begin(); it != frames.end();) {
    Frame& f = it->second;
    const bool overlaps = f.base < base + len && base < f.base + f.len;
    if (overlaps && f.alive) {
      if (!already(CheckKind::kBadFrameOp, pe, base)) {
        report(CheckKind::kBadFrameOp, pe, base, origin, &f.marked,
               "frame_mark overlaps a live frame at " + at_addr(pe, f.base));
      }
      return;
    }
    if (overlaps) {
      it = frames.erase(it);
    } else {
      ++it;
    }
  }
  Frame f;
  f.base = base;
  f.len = len;
  f.marked = origin;
  f.defined.assign(len, 0);
  f.writer.assign(len, Origin{});
  frames.emplace(base, std::move(f));
}

void ShadowMemory::frame_drop(ProcId pe, LocalAddr base, const Origin& origin) {
  auto& frames = pes_[pe].frames;
  const auto it = frames.find(base);
  if (it == frames.end()) {
    if (!already(CheckKind::kBadFrameOp, pe, base)) {
      report(CheckKind::kBadFrameOp, pe, base, origin, nullptr,
             "frame_drop of never-marked region at " + at_addr(pe, base));
    }
    return;
  }
  Frame& f = it->second;
  if (!f.alive) {
    if (!already(CheckKind::kDoubleFrameFree, pe, base)) {
      report(CheckKind::kDoubleFrameFree, pe, base, origin, &f.dropped,
             "frame at " + at_addr(pe, base) + " dropped twice");
    }
    return;
  }
  f.alive = false;
  f.dropped = origin;
}

void ShadowMemory::on_read(ProcId pe, LocalAddr addr, const Origin& origin) {
  ++report_.reads_checked;
  if (addr >= memory_words_) {
    if (!already(CheckKind::kOobAccess, pe, addr)) {
      report(CheckKind::kOobAccess, pe, addr, origin, nullptr,
             "load beyond local memory at " + at_addr(pe, addr));
    }
    return;
  }
  Frame* f = find(pe, addr);
  if (f == nullptr) return;  // static RAM: defined, like a C global
  if (!f->alive) {
    if (!already(CheckKind::kUseAfterFree, pe, addr)) {
      report(CheckKind::kUseAfterFree, pe, addr, origin, &f->dropped,
             "load from dropped frame at " + at_addr(pe, addr));
    }
    return;
  }
  const std::size_t off = addr - f->base;
  if (f->defined[off] == 0) {
    if (!already(CheckKind::kUninitRead, pe, addr)) {
      report(CheckKind::kUninitRead, pe, addr, origin, &f->marked,
             "load of uninitialized frame word at " + at_addr(pe, addr));
    }
  }
}

void ShadowMemory::on_write(ProcId pe, LocalAddr addr, const Origin& origin,
                            bool runtime) {
  ++report_.writes_checked;
  if (addr >= memory_words_) {
    if (!already(CheckKind::kOobAccess, pe, addr)) {
      report(CheckKind::kOobAccess, pe, addr, origin, nullptr,
             "store beyond local memory at " + at_addr(pe, addr));
    }
    return;
  }
  if (!runtime && addr < reserved_words_) {
    if (!already(CheckKind::kReservedStore, pe, addr)) {
      report(CheckKind::kReservedStore, pe, addr, origin, nullptr,
             "store into runtime-reserved word at " + at_addr(pe, addr));
    }
    return;
  }
  Frame* f = find(pe, addr);
  if (f == nullptr) return;
  if (!f->alive) {
    if (!already(CheckKind::kUseAfterFree, pe, addr)) {
      report(CheckKind::kUseAfterFree, pe, addr, origin, &f->dropped,
             "store to dropped frame at " + at_addr(pe, addr));
    }
    return;
  }
  const std::size_t off = addr - f->base;
  f->defined[off] = 1;
  f->writer[off] = origin;
}

void ShadowMemory::on_raw_write(ProcId pe, LocalAddr addr,
                                std::uint32_t words) {
  for (std::uint32_t i = 0; i < words; ++i) {
    Frame* f = find(pe, addr + i);
    if (f == nullptr || !f->alive) continue;
    f->defined[addr + i - f->base] = 1;
  }
}

void ShadowMemory::leak_scan() {
  for (ProcId pe = 0; pe < pes_.size(); ++pe) {
    for (const auto& [base, f] : pes_[pe].frames) {
      if (!f.alive) continue;
      report(CheckKind::kFrameLeak, pe, base, f.marked, nullptr,
             "frame at " + at_addr(pe, base) + " (" + std::to_string(f.len) +
                 " words) still marked at end of run");
    }
  }
}

}  // namespace emx::analysis
