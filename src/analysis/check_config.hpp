// Which always-on checkers a run arms (emx_run --check=...).
//
// With nothing enabled the analysis layer is not constructed at all: no
// shadow state is allocated, every hook site is a null-pointer test, and
// reported cycle counts are byte-identical to a build without it. The
// checkers themselves are pure observers — they never charge cycles or
// schedule events, so enabling them does not perturb timing either.
#pragma once

#include <string>

namespace emx::analysis {

struct CheckConfig {
  bool memcheck = false;  ///< shadow-memory addressability + definedness
  bool race = false;      ///< vector-clock data-race detection
  bool deadlock = false;  ///< quiescence-time wait-for-graph scan
  bool lint = false;      ///< simulator invariant checks

  bool enabled() const { return memcheck || race || deadlock || lint; }

  static CheckConfig all();

  /// Parses a comma-separated list: "memcheck,race,deadlock,lint", the
  /// shorthand "all", or "" / "none" (nothing). Unknown names panic.
  static CheckConfig parse(const std::string& list);

  /// "memcheck,race" — the enabled checkers, for banners and reports.
  std::string summary() const;
};

}  // namespace emx::analysis
