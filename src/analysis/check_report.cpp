#include "analysis/check_report.hpp"

#include <sstream>

namespace emx::analysis {

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kUninitRead: return "uninit-read";
    case CheckKind::kUseAfterFree: return "use-after-free";
    case CheckKind::kDoubleFrameFree: return "double-frame-free";
    case CheckKind::kFrameLeak: return "frame-leak";
    case CheckKind::kReservedStore: return "reserved-store";
    case CheckKind::kOobAccess: return "oob-access";
    case CheckKind::kBadFrameOp: return "bad-frame-op";
    case CheckKind::kWriteReadRace: return "write-read-race";
    case CheckKind::kReadWriteRace: return "read-write-race";
    case CheckKind::kWriteWriteRace: return "write-write-race";
    case CheckKind::kDeadlock: return "deadlock";
    case CheckKind::kStuckThread: return "stuck-thread";
    case CheckKind::kLateEvent: return "late-event";
    case CheckKind::kFifoOvertake: return "fifo-overtake";
    case CheckKind::kNegativeCharge: return "negative-charge";
    case CheckKind::kMisroutedPacket: return "misrouted-packet";
  }
  return "?";
}

std::string Origin::describe() const {
  std::ostringstream os;
  os << "pe" << proc;
  if (thread != kInvalidThread) os << " t" << thread;
  os << " @" << cycle;
  return os.str();
}

std::string Diagnostic::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " [" << origin.describe() << "] " << message;
  if (has_aux) os << " (related: " << aux.describe() << ")";
  return os.str();
}

void CheckReport::add(Diagnostic d) {
  ++counts[static_cast<std::size_t>(d.kind)];
  if (diagnostics.size() < kMaxDiagnostics) {
    diagnostics.push_back(std::move(d));
  } else {
    ++suppressed;
  }
}

std::string CheckReport::summary_text() const {
  std::ostringstream os;
  os << "checkers: " << total() << " finding(s)";
  if (suppressed > 0) os << " (" << suppressed << " suppressed)";
  os << "\n  activity: " << reads_checked << " reads / " << writes_checked
     << " writes shadow-checked, " << frames_tracked << " frame(s) tracked, "
     << accesses_raced << " accesses race-checked (" << hb_edges
     << " hb joins), " << packets_linted << " packets linted\n";
  for (std::size_t k = 0; k < kCheckKindCount; ++k) {
    if (counts[k] == 0) continue;
    os << "  " << to_string(static_cast<CheckKind>(k)) << ": " << counts[k]
       << "\n";
  }
  for (const auto& d : diagnostics) os << "  " << d.describe() << "\n";
  return os.str();
}

}  // namespace emx::analysis
