#include "analysis/check_config.hpp"

#include "common/assert.hpp"

namespace emx::analysis {

CheckConfig CheckConfig::all() {
  CheckConfig c;
  c.memcheck = c.race = c.deadlock = c.lint = true;
  return c;
}

CheckConfig CheckConfig::parse(const std::string& list) {
  CheckConfig c;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    const std::string name = list.substr(pos, end - pos);
    if (name == "memcheck") {
      c.memcheck = true;
    } else if (name == "race") {
      c.race = true;
    } else if (name == "deadlock") {
      c.deadlock = true;
    } else if (name == "lint") {
      c.lint = true;
    } else if (name == "all") {
      c = all();
    } else if (!name.empty() && name != "none") {
      EMX_CHECK(false, "unknown checker '" + name +
                           "' (expected memcheck|race|deadlock|lint|all|none)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return c;
}

std::string CheckConfig::summary() const {
  std::string s;
  const auto append = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (memcheck) append("memcheck");
  if (race) append("race");
  if (deadlock) append("deadlock");
  if (lint) append("lint");
  return s.empty() ? "none" : s;
}

}  // namespace emx::analysis
