// A tiny directed wait-for graph with cycle extraction.
//
// Nodes are logical thread ids; an edge a -> b means "a cannot make
// progress until b does". Built by the checker when the machine quiesces
// with suspended threads, then scanned for a cycle to name in the
// deadlock diagnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/vector_clock.hpp"

namespace emx::analysis {

class WaitGraph {
 public:
  void add_edge(LogicalTid from, LogicalTid to);

  /// Some cycle in the graph as [t0, t1, ..., t0-again-implied], or empty
  /// if the graph is acyclic. Deterministic: DFS in insertion order.
  std::vector<LogicalTid> find_cycle() const;

  std::size_t edge_count() const;

 private:
  struct Node {
    LogicalTid id = kNoLogicalTid;
    std::vector<std::size_t> out;  ///< indices into nodes_
  };

  std::size_t node_index(LogicalTid id);

  std::vector<Node> nodes_;
};

}  // namespace emx::analysis
