#include "analysis/race_detector.hpp"

#include <sstream>

namespace emx::analysis {

void RaceDetector::on_read(LogicalTid tid, const VectorClock& vc, Word addr,
                           const Origin& origin) {
  ++report_.accesses_raced;
  auto& cell = cells_[addr];
  if (cell.has_write && cell.write.epoch.tid != tid &&
      !happens_before(cell.write.epoch, vc)) {
    report_race(CheckKind::kWriteReadRace, addr, origin, cell.write.origin);
  }
  for (auto& r : cell.reads) {
    if (r.epoch.tid == tid) {
      r = Access{Epoch{tid, vc.of(tid)}, origin};
      return;
    }
  }
  cell.reads.push_back(Access{Epoch{tid, vc.of(tid)}, origin});
}

void RaceDetector::on_write(LogicalTid tid, const VectorClock& vc, Word addr,
                            const Origin& origin) {
  ++report_.accesses_raced;
  auto& cell = cells_[addr];
  if (cell.has_write && cell.write.epoch.tid != tid &&
      !happens_before(cell.write.epoch, vc)) {
    report_race(CheckKind::kWriteWriteRace, addr, origin, cell.write.origin);
  }
  for (const auto& r : cell.reads) {
    if (r.epoch.tid != tid && !happens_before(r.epoch, vc)) {
      report_race(CheckKind::kReadWriteRace, addr, origin, r.origin);
    }
  }
  cell.reads.clear();
  cell.write = Access{Epoch{tid, vc.of(tid)}, origin};
  cell.has_write = true;
}

void RaceDetector::report_race(CheckKind kind, Word addr,
                               const Origin& current, const Origin& previous) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 32) | static_cast<std::uint64_t>(addr);
  if (!reported_.insert(key).second) {
    ++report_.counts[static_cast<std::size_t>(kind)];
    return;
  }
  Diagnostic d;
  d.kind = kind;
  d.origin = current;
  d.aux = previous;
  d.has_aux = true;
  d.addr = addr;
  std::ostringstream os;
  os << "unsynchronized accesses to global addr 0x" << std::hex << addr;
  d.message = os.str();
  report_.add(std::move(d));
}

}  // namespace emx::analysis
