#include "analysis/wait_graph.hpp"

namespace emx::analysis {

std::size_t WaitGraph::node_index(LogicalTid id) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id == id) return i;
  }
  nodes_.push_back(Node{id, {}});
  return nodes_.size() - 1;
}

void WaitGraph::add_edge(LogicalTid from, LogicalTid to) {
  const std::size_t f = node_index(from);
  const std::size_t t = node_index(to);
  for (const std::size_t existing : nodes_[f].out) {
    if (existing == t) return;
  }
  nodes_[f].out.push_back(t);
}

std::size_t WaitGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.out.size();
  return n;
}

std::vector<LogicalTid> WaitGraph::find_cycle() const {
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(nodes_.size(), Mark::kWhite);
  std::vector<std::size_t> stack;

  // Iterative DFS; on hitting a grey node, the stack suffix from its
  // first occurrence is the cycle.
  struct Visit {
    std::size_t node;
    std::size_t next_out;
  };
  for (std::size_t root = 0; root < nodes_.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<Visit> visits{{root, 0}};
    mark[root] = Mark::kGrey;
    stack.push_back(root);
    while (!visits.empty()) {
      Visit& v = visits.back();
      if (v.next_out < nodes_[v.node].out.size()) {
        const std::size_t next = nodes_[v.node].out[v.next_out++];
        if (mark[next] == Mark::kGrey) {
          std::vector<LogicalTid> cycle;
          std::size_t i = 0;
          while (stack[i] != next) ++i;
          for (; i < stack.size(); ++i) cycle.push_back(nodes_[stack[i]].id);
          return cycle;
        }
        if (mark[next] == Mark::kWhite) {
          mark[next] = Mark::kGrey;
          stack.push_back(next);
          visits.push_back({next, 0});
        }
      } else {
        mark[v.node] = Mark::kBlack;
        stack.pop_back();
        visits.pop_back();
      }
    }
  }
  return {};
}

}  // namespace emx::analysis
