#include "core/config.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace emx {

void MachineConfig::validate() const {
  EMX_CHECK(proc_count >= 1, "need at least one processor");
  EMX_CHECK(network != NetworkModel::kDetailed || is_power_of_two(proc_count),
            "detailed Omega network requires power-of-two proc_count");
  EMX_CHECK(memory_words >= 1024, "per-PE memory unrealistically small");
  EMX_CHECK(clock_hz > 0, "clock must be positive");
  EMX_CHECK(ibu_fifo_depth > 0 && obu_fifo_depth > 0, "FIFO depth must be positive");
  EMX_CHECK(packet_gen_cycles >= 1, "packet generation takes at least a cycle");
  EMX_CHECK(barrier_poll_interval >= 1, "poll interval must be positive");
  fault.validate();
}

MachineConfig MachineConfig::paper_machine(std::uint32_t procs) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.network = NetworkModel::kDetailed;
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::emx_prototype() {
  MachineConfig cfg;
  cfg.proc_count = 80;
  cfg.network = NetworkModel::kFast;
  cfg.validate();
  return cfg;
}

std::string MachineConfig::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "EM-X machine: P=%u, %.0f MHz, mem=%zu words/PE, net=%s, "
      "read-service=%s, switch=%llu+%llu cycles, dma=%llu cycles",
      proc_count, clock_hz / 1e6, memory_words,
      network == NetworkModel::kDetailed ? "omega-detailed" : "omega-fast",
      read_service == ReadServiceMode::kBypassDma ? "bypass-dma" : "exu-thread(EM-4)",
      static_cast<unsigned long long>(switch_save_cycles),
      static_cast<unsigned long long>(mu_dispatch_cycles),
      static_cast<unsigned long long>(dma_service_cycles));
  std::string out = buf;
  if (fault.enabled()) {
    char fb[256];
    std::snprintf(fb, sizeof fb,
                  ", faults(seed=%llu drop=%g dup=%g corrupt=%g jitter<=%llu "
                  "timeout=%llu)",
                  static_cast<unsigned long long>(fault.seed), fault.drop_rate,
                  fault.duplicate_rate, fault.corrupt_rate,
                  static_cast<unsigned long long>(fault.jitter_max_cycles),
                  static_cast<unsigned long long>(fault.timeout_cycles));
    out += fb;
    if (!fault.outages.empty()) {
      char ob[64];
      std::snprintf(ob, sizeof ob, ", outages=%zu", fault.outages.size());
      out += ob;
    }
    if (!fault.reliability) out += ", reliability=OFF";
  }
  if (watchdog_cycles != 0) {
    char wb[64];
    std::snprintf(wb, sizeof wb, ", watchdog=%llu",
                  static_cast<unsigned long long>(watchdog_cycles));
    out += wb;
  }
  return out;
}

}  // namespace emx
