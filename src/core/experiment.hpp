// Experiment runner: sweeps thread counts / data sizes across fresh
// Machines and collects the per-figure series. Independent configurations
// run in parallel on host worker threads (each owns its whole Machine).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instrumentation.hpp"

namespace emx {

/// One measured configuration.
struct SweepPoint {
  std::uint32_t threads = 1;
  std::uint64_t n = 0;  ///< total elements / points
  MachineReport report;
};

/// Runs `run(threads, n)` for the cross product of the two axes.
/// `parallel` uses one host thread per hardware core; results are returned
/// in deterministic (n-major, threads-minor) order regardless.
std::vector<SweepPoint> run_sweep(
    const std::vector<std::uint64_t>& sizes,
    const std::vector<std::uint32_t>& thread_counts,
    const std::function<MachineReport(std::uint32_t threads, std::uint64_t n)>& run,
    bool parallel = true);

/// Formats a size such as 524288 as "512K", 8388608 as "8M" (the paper's
/// axis labels).
std::string size_label(std::uint64_t n);

/// Parses "512K" / "8M" / "1024" back into an element count.
std::uint64_t parse_size_label(const std::string& label);

}  // namespace emx
