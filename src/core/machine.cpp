#include "core/machine.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"
#include "network/fast_network.hpp"
#include "network/omega_network.hpp"
#include "runtime/barrier.hpp"
#include "runtime/global_addr.hpp"
#include "sim/parallel_engine.hpp"

namespace emx {

namespace {

ProcId tree_parent(ProcId p) { return (p - 1) / 2; }

// --- iteration-barrier coordinator bodies -------------------------------
// These run as real EM-X threads: join packets are thread invocations and
// the coordinator's work consumes its EXU cycles, so central-coordinator
// serialisation is modelled faithfully.

rt::ThreadBody central_join_body(Machine* m, std::uint32_t* count,
                                 rt::ThreadApi api, Word sense) {
  co_await api.compute(2);  // counter load/increment/compare
  if (++*count == m->config().proc_count) {
    *count = 0;
    // Release: one remote write per PE sets its sense flag; the writes
    // are serviced by each PE's by-pass DMA.
    for (ProcId p = 0; p < m->config().proc_count; ++p) {
      co_await api.remote_write(
          rt::GlobalAddr{p, rt::barrier_flag_addr(static_cast<std::uint8_t>(sense))},
          1);
    }
  }
}

rt::ThreadBody tree_release_body(Machine* m, std::uint32_t release_entry,
                                 rt::ThreadApi api, Word sense) {
  co_await api.compute(1);
  api.local_write(rt::barrier_flag_addr(static_cast<std::uint8_t>(sense)), 1);
  const ProcId p = api.proc();
  const ProcId left = 2 * p + 1;
  const ProcId right = 2 * p + 2;
  if (left < m->config().proc_count) co_await api.spawn(left, release_entry, sense);
  if (right < m->config().proc_count) co_await api.spawn(right, release_entry, sense);
}

rt::ThreadBody tree_join_body(std::vector<rt::BarrierNode>* nodes,
                              std::uint32_t join_entry, std::uint32_t release_entry,
                              rt::ThreadApi api, Word sense) {
  co_await api.compute(2);
  const ProcId p = api.proc();
  rt::BarrierNode& node = (*nodes)[p];
  if (++node.count == node.expected) {
    node.count = 0;
    if (p == 0) {
      // Root: begin the downward release wave on ourselves.
      co_await api.spawn(0, release_entry, sense);
    } else {
      co_await api.spawn(tree_parent(p), join_entry, sense);
    }
  }
}

}  // namespace

Machine::Machine(MachineConfig config, trace::TraceSink* sink,
                 sim::EngineSpec engine)
    : config_(config), sink_(sink) {
  config_.validate();

  // Engine selection. The parallel engine needs the fast network's
  // window participant and lane-pure components: the fault decorator
  // (cancelling retransmit timers, machine-level outage events), the
  // dynamic checkers (one shared observer), the watchdog (a global
  // progress clock) and the detailed network (global switch state) all
  // run sequentially. Results are bit-identical either way, so the
  // fallback is silent — the spec is an execution knob, not a semantic
  // one.
  const bool parallel =
      engine.kind == sim::EngineSpec::Kind::kParallel &&
      config_.network == NetworkModel::kFast && !config_.fault.enabled() &&
      !config_.check.enabled() && config_.watchdog_cycles == 0;
  if (parallel)
    engine_ = std::make_unique<sim::ParallelEngine>(config_.proc_count,
                                                    engine.shards, sink_);
  else
    engine_ = std::make_unique<sim::SequentialEngine>(sim_, sink_);

  switch (config_.network) {
    case NetworkModel::kDetailed:
      network_ = std::make_unique<net::OmegaNetwork>(
          sim_, config_.proc_count, config_.self_loop_cycles,
          config_.port_interval_cycles);
      break;
    case NetworkModel::kFast:
      network_ = std::make_unique<net::FastNetwork>(
          sim_, config_.proc_count, config_.self_loop_cycles,
          config_.port_interval_cycles);
      break;
  }
  if (parallel) {
    // No fault decorator in parallel mode (gated above), so network_ IS
    // the fast model: wire it up as the engine's window participant with
    // the per-PE lane tables.
    auto* par = static_cast<sim::ParallelEngine*>(engine_.get());
    auto* fast = static_cast<net::FastNetwork*>(network_.get());
    fast->set_lanes(par->lane_table(), par->lane_index_table(),
                    par->lane_count());
    par->set_participant(fast);
  }
  if (config_.fault.enabled()) {
    // Decorate the fabric: faults are injected at the sender's NIC and
    // checksums verified at the receiver's, whichever model is inside.
    auto faulty = std::make_unique<fault::FaultyNetwork>(
        sim_, std::move(network_), config_.proc_count, config_.fault,
        fault_domain_, sink_);
    faulty_ = faulty.get();
    network_ = std::move(faulty);
  }
  // Ejection routing is per-destination: the delivery table installed at
  // the end of this constructor (after the PEs exist) replaces the old
  // single machine-wide callback.
  if (faulty_ != nullptr) {
    // One registry covers every stream: snapshots capture the plan's
    // decision stream alongside the app workload streams.
    streams_.adopt("fault.plan", &faulty_->mutable_plan().rng());
  }

  // Runtime-internal entries (ids are stable: registered before any app).
  barrier_entry_central_ = registry_.add(
      [this](rt::ThreadApi api, Word sense) -> rt::ThreadBody {
        return central_join_body(this, &barrier_count_, api, sense);
      });
  const std::uint32_t release_entry = registry_.add(
      [this](rt::ThreadApi api, Word sense) -> rt::ThreadBody {
        // This lambda's own entry id is barrier_entry_tree_ - 1 (it is
        // registered immediately before the tree join entry).
        return tree_release_body(this, barrier_entry_tree_ - 1, api, sense);
      });
  barrier_entry_tree_ = registry_.add(
      [this, release_entry](rt::ThreadApi api, Word sense) -> rt::ThreadBody {
        return tree_join_body(&tree_nodes_, barrier_entry_tree_,
                              release_entry, api, sense);
      });
  EMX_CHECK(barrier_entry_tree_ == release_entry + 1,
            "entry id layout changed; fix tree_release_body's child entry");

  pes_.reserve(config_.proc_count);
  for (ProcId p = 0; p < config_.proc_count; ++p) {
    // Each PE builds against its engine lane (the shared context under
    // the sequential engine, its shard's under the parallel one) and the
    // engine's per-lane trace sink.
    pes_.push_back(std::make_unique<proc::Emcy>(engine_->lane(p), config_, p,
                                                *network_, registry_,
                                                engine_->pe_sink(p)));
    // fault.reliability=false leaves the lossy plan armed but the
    // recovery protocol off — the deliberately-unrecoverable machine the
    // watchdog tests exercise.
    if (faulty_ != nullptr && config_.fault.reliability) {
      auto& pe = *pes_.back();
      channels_.push_back(std::make_unique<fault::ReliableChannel>(
          sim_, config_.fault, p, pe.obu(), pe.engine().exu(), fault_domain_,
          config_.packet_gen_cycles, sink_));
      pe.attach_channel(channels_.back().get());
    }
  }

  if (faulty_ != nullptr) {
    for (const auto& w : config_.fault.outages) {
      EMX_CHECK(w.pe < config_.proc_count, "outage window names an unknown PE");
      sim_.schedule_at(w.begin, &Machine::outage_begin_event, this, w.pe, w.end);
      sim_.schedule_at(w.end, &Machine::outage_end_event, this, w.pe, 0);
    }
  }

  if (config_.check.enabled()) {
    checker_ = std::make_unique<analysis::CheckContext>(
        config_.check, sim_, config_.proc_count, config_.memory_words,
        rt::kReservedWords);
    // Everything registered so far is runtime plumbing; apps come later.
    checker_->set_runtime_entry_limit(static_cast<std::uint32_t>(registry_.size()));
    mem_probes_.resize(config_.proc_count);
    for (ProcId p = 0; p < config_.proc_count; ++p) {
      pes_[p]->engine().set_checker(checker_.get());
      mem_probes_[p] = MemProbe{checker_.get(), p};
      pes_[p]->memory().set_write_probe(&Machine::mem_probe_thunk,
                                        &mem_probes_[p]);
    }
    if (config_.check.lint)
      sim_.set_late_schedule_hook(&Machine::late_schedule_thunk, checker_.get());
  }

  // Delivery table: with no checker armed, a packet ejecting from the
  // fabric jumps straight into its destination PE's accept() — no
  // machine-wide dispatch hop on the hottest path. A checker reinstates
  // the hop so it observes every ejection.
  delivery_.resize(config_.proc_count);
  for (ProcId p = 0; p < config_.proc_count; ++p) {
    delivery_[p] = checker_ != nullptr
                       ? net::DeliveryEndpoint{&Machine::delivery_thunk, this}
                       : net::DeliveryEndpoint{&proc::Emcy::accept_thunk,
                                               pes_[p].get()};
  }
  network_->set_delivery_table(delivery_.data(),
                               static_cast<std::uint32_t>(delivery_.size()));

  // Component registry: registration order IS the snapshot section order
  // (append-only; see common/component.hpp). assert_covers is the
  // completeness tripwire — a stateful unit built above but missing here
  // panics now instead of silently dropping out of snapshots, replay
  // digests, crash dumps and the stall diagnosis.
  components_.add(engine_->sim_component());
  components_.add(&streams_);
  components_.add(network_.get());
  if (faulty_ != nullptr) components_.add(&fault_domain_);
  if (checker_ != nullptr) components_.add(checker_.get());
  if (auto* digest = dynamic_cast<Component*>(sink_); digest != nullptr)
    components_.add(digest);
  for (const auto& pe : pes_) components_.add(pe.get());
  components_.seal();
  components_.assert_covers(
      {engine_->sim_component(), &streams_, network_.get(),
       faulty_ != nullptr ? &fault_domain_ : nullptr,
       checker_.get(), pes_.empty() ? nullptr : pes_.front().get(),
       pes_.empty() ? nullptr : pes_.back().get()});
}

Machine::~Machine() = default;

namespace {

std::string pe_range_message(ProcId p, std::size_t count) {
  return "Machine::pe(" + std::to_string(p) +
         "): processor id out of range — this machine has " +
         std::to_string(count) + " PEs (valid ids 0.." +
         std::to_string(count == 0 ? 0 : count - 1) + ")";
}

}  // namespace

proc::Emcy& Machine::pe(ProcId p) {
  EMX_CHECK(p < pes_.size(), pe_range_message(p, pes_.size()));
  return *pes_[p];
}

const Component* Machine::sealed_component(const std::string& name) const {
  EMX_CHECK(components_.sealed(),
            "sealed_component('" + name + "') before the registry sealed");
  const Component* c = components_.find(name);
  std::string known;
  if (c == nullptr) {
    for (const Component* item : components_.items()) {
      if (!known.empty()) known += ", ";
      known += item->component_name();
    }
  }
  EMX_CHECK(c != nullptr, "no sealed component named '" + name +
                              "' (known components: " + known + ")");
  return c;
}

const proc::Emcy& Machine::pe(ProcId p) const {
  EMX_CHECK(p < pes_.size(), pe_range_message(p, pes_.size()));
  return *pes_[p];
}

void Machine::note_isa_program(std::shared_ptr<const isa::Program> program) {
  EMX_CHECK(program != nullptr, "note_isa_program: null program");
  isa_programs_.push_back(std::move(program));
}

void Machine::configure_barrier(std::uint32_t participants_per_pe) {
  EMX_CHECK(participants_per_pe > 0, "barrier needs at least one participant");
  if (config_.barrier == BarrierTopology::kCentral) {
    for (auto& pe : pes_) {
      pe->engine().set_barrier(0, barrier_entry_central_, participants_per_pe);
    }
    return;
  }
  tree_nodes_.assign(config_.proc_count, rt::BarrierNode{});
  for (ProcId p = 0; p < config_.proc_count; ++p) {
    std::uint32_t expected = 1;  // this PE's own local join
    if (2 * p + 1 < config_.proc_count) ++expected;
    if (2 * p + 2 < config_.proc_count) ++expected;
    tree_nodes_[p].expected = expected;
    pes_[p]->engine().set_barrier(p, barrier_entry_tree_, participants_per_pe);
  }
}

void Machine::spawn(ProcId proc, std::uint32_t entry, Word arg, Cycle at) {
  EMX_CHECK(!ran_, "spawn after run()");
  pe(proc).engine().schedule_invocation(at, entry, arg);
}

void Machine::run() {
  EMX_CHECK(!ran_, "Machine::run() called twice");
  if (config_.watchdog_cycles > 0) sim_.arm_watchdog(config_.watchdog_cycles);
  const sim::StopReason stop = engine_->run(config_.max_events, 0);
  finish_run(stop);
}

bool Machine::run_to(Cycle pause_at) {
  EMX_CHECK(!ran_, "Machine::run_to() after the run completed");
  if (config_.watchdog_cycles > 0) sim_.arm_watchdog(config_.watchdog_cycles);
  const sim::StopReason stop = engine_->run(config_.max_events, pause_at);
  if (stop == sim::StopReason::kPaused) return true;
  finish_run(stop);
  return false;
}

void Machine::finish_run(sim::StopReason stop) {
  end_cycle_ = engine_->now();
  ran_ = true;
  watchdog_fired_ = stop == sim::StopReason::kWatchdog;
  if (watchdog_fired_) {
    // Non-quiescent stall: events (timers, barrier polls) keep firing but
    // nothing makes progress. Build the diagnosis and let the checker's
    // wait-graph scan name the stuck threads; the quiescence panics below
    // would only obscure what the diagnosis explains.
    build_watchdog_diagnosis(/*quiescent=*/false);
    if (checker_ != nullptr) checker_->on_quiesce();
    return;
  }
  if (checker_ != nullptr) checker_->on_quiesce();
  if (config_.watchdog_cycles > 0) {
    // An unrecoverable hang can also *quiesce*: a thread suspended on a
    // reply that will never come leaves nothing in the event queue, so
    // the machine drains instead of spinning. With the watchdog armed,
    // convert that into the same bounded, diagnosed stop rather than
    // panicking below.
    bool hung = false;
    for (const auto& pe : pes_)
      hung = hung || pe->engine().frames().live() != 0;
    if (hung) {
      watchdog_fired_ = true;
      build_watchdog_diagnosis(/*quiescent=*/true);
      return;
    }
  }
  if (checker_ == nullptr || !checker_->stuck_reported()) {
    // When the deadlock checker has already named the stuck threads, skip
    // the panic so its diagnostics reach the report.
    for (const auto& pe : pes_) {
      EMX_CHECK(pe->engine().frames().live() == 0,
                "simulation drained with live threads (deadlock or lost wake)");
    }
  }
  if (checker_ != nullptr) checker_->leak_scan();
  if (faulty_ != nullptr) {
    // Reliability invariant: every injected recoverable fault was healed —
    // no request is still outstanding and every damaged request completed.
    for (const auto& pe : pes_) {
      EMX_CHECK(pe->channel() == nullptr || pe->channel()->idle(),
                "run drained with requests still outstanding in a channel");
    }
    EMX_CHECK(fault_domain_.pending_losses() == 0,
              "an injected fault was never recovered");
    const auto& fr = fault_domain_.report();
    EMX_CHECK(fr.recovered == fr.injected_recoverable,
              "fault ledger out of balance");
  }
}

void Machine::outage_begin_event(void* ctx, std::uint64_t pe,
                                 std::uint64_t end) {
  auto* self = static_cast<Machine*>(ctx);
  const auto p = static_cast<ProcId>(pe);
  if (self->sink_ != nullptr)
    self->sink_->on_event(trace::TraceEvent{self->sim_.now(), p, kInvalidThread,
                                            trace::EventType::kOutageBegin,
                                            end});
  self->pes_[p]->begin_outage();
}

void Machine::outage_end_event(void* ctx, std::uint64_t pe, std::uint64_t) {
  auto* self = static_cast<Machine*>(ctx);
  const auto p = static_cast<ProcId>(pe);
  if (self->sink_ != nullptr)
    self->sink_->on_event(trace::TraceEvent{self->sim_.now(), p, kInvalidThread,
                                            trace::EventType::kOutageEnd, 0});
  self->pes_[p]->end_outage();
}

void Machine::build_watchdog_diagnosis(bool quiescent) {
  std::string& d = watchdog_diagnosis_;
  char buf[192];
  if (quiescent) {
    std::snprintf(buf, sizeof buf,
                  "watchdog: machine quiesced at cycle %llu with threads "
                  "still suspended — nothing left to run\n",
                  static_cast<unsigned long long>(sim_.now()));
  } else {
    std::snprintf(buf, sizeof buf,
                  "watchdog: no forward progress since cycle %llu "
                  "(window %llu cycles), stopped at cycle %llu\n",
                  static_cast<unsigned long long>(sim_.last_progress()),
                  static_cast<unsigned long long>(config_.watchdog_cycles),
                  static_cast<unsigned long long>(sim_.now()));
  }
  d += buf;
  // Every unit appends what it is waiting on: the PEs their live-thread /
  // outstanding-request blocks, the fault domain its loss ledger.
  for (const Component* c : components_.items()) c->describe_stall(d, quiescent);
}

void Machine::delivery_thunk(void* ctx, const net::Packet& packet) {
  // Checked runs only (see the delivery table in the constructor):
  // unchecked runs route from the fabric straight into Emcy::accept,
  // which notes watchdog progress itself.
  auto* self = static_cast<Machine*>(ctx);
  EMX_DCHECK(packet.dst < self->pes_.size(), "packet to unknown PE");
  self->checker_->on_deliver(packet.dst, packet);
  self->pes_[packet.dst]->accept(packet);
}

void Machine::mem_probe_thunk(void* ctx, LocalAddr addr, std::uint32_t words) {
  const auto* probe = static_cast<const MemProbe*>(ctx);
  probe->checker->on_raw_write(probe->pe, addr, words);
}

void Machine::late_schedule_thunk(void* ctx, Cycle target, Cycle now) {
  static_cast<analysis::CheckContext*>(ctx)->on_late_schedule(target, now);
}

MachineReport Machine::report() const {
  EMX_CHECK(ran_, "report() before run()");
  MachineReport r;
  // total_cycles first: the PEs compute their idle time against it in
  // the contribute pass below.
  r.total_cycles = end_cycle_;
  r.clock_hz = config_.clock_hz;
  r.network = network_->stats();
  r.events_processed = engine_->events_processed();
  r.procs.reserve(pes_.size());
  // One registry walk replaces the old hand-rolled per-unit blocks: each
  // PE appends its ProcReport (registration order == PE order), the
  // fault domain fills the ledger half of FaultReport, the checker its
  // findings.
  for (const Component* c : components_.items()) c->contribute(r);
  // The per-PE channel activity sums are typed (ChannelStats), so the
  // aggregation stays here rather than behind the Component interface.
  for (const auto& channel : channels_) {
    const auto& cs = channel->stats();
    r.fault.reads_tracked += cs.reads_tracked;
    r.fault.msgs_tracked += cs.msgs_tracked;
    r.fault.timeouts += cs.timeouts;
    r.fault.retries += cs.retries;
    r.fault.msg_retransmits += cs.msg_retransmits;
    r.fault.acks_sent += cs.acks_sent;
    r.fault.dup_replies_suppressed += cs.dup_replies_suppressed;
    r.fault.dup_msgs_suppressed += cs.dup_msgs_suppressed;
    r.fault.dup_acks_ignored += cs.dup_acks_ignored;
    r.fault.reads_recovered += cs.reads_recovered;
    r.fault.msgs_recovered += cs.msgs_recovered;
    r.fault.fence_holds += cs.fence_holds;
    r.fault.worst_recovery_cycles =
        std::max(r.fault.worst_recovery_cycles, cs.worst_recovery_cycles);
    r.fault.peak_outstanding =
        std::max(r.fault.peak_outstanding, cs.peak_outstanding);
  }
  r.watchdog_fired = watchdog_fired_;
  r.watchdog_diagnosis = watchdog_diagnosis_;
  return r;
}

}  // namespace emx
