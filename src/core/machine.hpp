// emx::Machine — the assembled EM-X multiprocessor.
//
// Owns the simulation context, the Omega network, and P EMC-Y processing
// elements; provides the public API applications build on:
//
//   MachineConfig cfg;  cfg.proc_count = 16;
//   Machine m(cfg);
//   auto entry = m.register_entry([](rt::ThreadApi api, Word arg)
//       -> rt::ThreadBody { co_await api.compute(10); });
//   m.configure_barrier(/*threads per PE*/ 2);
//   m.spawn(0, entry, 42);
//   m.run();
//   MachineReport r = m.report();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.hpp"
#include "common/component.hpp"
#include "common/rng_registry.hpp"
#include "core/config.hpp"
#include "core/instrumentation.hpp"
#include "fault/faulty_network.hpp"
#include "network/network_iface.hpp"
#include "proc/emcy.hpp"
#include "runtime/thread_api.hpp"
#include "sim/engine.hpp"
#include "sim/sim_context.hpp"
#include "trace/trace.hpp"

namespace emx::isa {
struct Program;
}

namespace emx {

class Machine {
 public:
  /// `engine` picks who runs the event loop (sequential default). The
  /// parallel engine requires the fast network with no fault plan, no
  /// checkers and no watchdog; any other configuration silently runs
  /// sequentially — results are bit-identical either way, the spec is an
  /// execution knob, never a semantic one.
  explicit Machine(MachineConfig config, trace::TraceSink* sink = nullptr,
                   sim::EngineSpec engine = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }

  /// Every stateful unit of this machine, in serialization order: "sim",
  /// "streams", "network", then "fault"/"checker"/"trace" when armed,
  /// then "pe0".."peN". Snapshot capture/verify, record-replay digests,
  /// crash dumps, stall diagnosis and report aggregation all iterate
  /// this one list.
  const ComponentRegistry& components() const { return components_; }

  /// The sealed component named `name`; panics (with the known names) if
  /// the registry is not sealed yet or no such component exists. The
  /// workload registry resolves each plugin's metrics component through
  /// this at build time — a plugin naming a unit that never made it into
  /// the sealed registry fails loudly instead of reporting into the void.
  const Component* sealed_component(const std::string& name) const;
  /// The sequential engine's context (every PE's lane). Under the
  /// parallel engine the PEs run on per-shard lanes instead and this
  /// context stays at cycle 0 — use end_cycle()/report() for results.
  sim::SimContext& sim() { return sim_; }
  const sim::SimContext& sim() const { return sim_; }
  /// The engine actually running this machine ("seq" unless the parallel
  /// engine was requested *and* the configuration allows it) and the host
  /// threads it runs lanes on.
  const char* engine_name() const { return engine_->name(); }
  std::uint32_t engine_threads() const { return engine_->threads(); }
  net::Network& network() { return *network_; }
  const net::Network& network() const { return *network_; }
  bool fault_enabled() const { return faulty_ != nullptr; }
  const fault::FaultDomain& fault_domain() const { return fault_domain_; }
  bool check_enabled() const { return checker_ != nullptr; }
  /// The armed checker hub, or null when config.check is all-off.
  const analysis::CheckContext* checker() const { return checker_.get(); }
  proc::Emcy& pe(ProcId p);
  const proc::Emcy& pe(ProcId p) const;
  proc::Memory& memory(ProcId p) { return pe(p).memory(); }
  rt::ThreadEngine& engine(ProcId p) { return pe(p).engine(); }

  /// Every pseudo-random stream of this run, by name. Apps draw their
  /// workload streams here ("workload.<app>"); the fault plan's stream is
  /// adopted as "fault.plan" — so one registry serializes them all.
  rng::StreamRegistry& streams() { return streams_; }
  const rng::StreamRegistry& streams() const { return streams_; }

  /// Registers a spawnable thread entry; returns its entry id.
  std::uint32_t register_entry(rt::EntryFn fn) { return registry_.add(std::move(fn)); }

  /// Records an ISA program registered on this machine
  /// (isa::register_program calls this). The static verifier gates a run
  /// by walking exactly this list — coroutine-native entries have no
  /// instruction stream to analyse and are not recorded.
  void note_isa_program(std::shared_ptr<const isa::Program> program);

  /// Every recorded ISA program, in registration order.
  const std::vector<std::shared_ptr<const isa::Program>>& isa_programs() const {
    return isa_programs_;
  }

  /// Sets the number of threads that join the iteration barrier on every
  /// PE. Must be called before any thread reaches the barrier.
  void configure_barrier(std::uint32_t participants_per_pe);

  /// Schedules a thread invocation on `proc` at cycle `at` (host-side
  /// seeding of the computation).
  void spawn(ProcId proc, std::uint32_t entry, Word arg, Cycle at = 0);

  /// Runs the simulation to completion (event queue drained). Panics if
  /// threads remain suspended (deadlock / lost wake-up) or if the event
  /// budget (config.max_events) is exceeded. When config.watchdog_cycles
  /// is armed, a non-quiescent stall instead ends the run with
  /// watchdog_fired() set and a diagnosis in place of the panics.
  void run();

  /// Runs until the next event would land past `pause_at` (checkpoint /
  /// record / resume runs). Returns true when paused — the caller may
  /// snapshot and call run_to() again (or with 0 to finish). Returns
  /// false when the run completed: end-of-run checks have executed
  /// exactly as in run(), and calling again is an error.
  bool run_to(Cycle pause_at);

  bool ran() const { return ran_; }
  Cycle end_cycle() const { return end_cycle_; }

  /// True when the progress watchdog cut the run short (armed via
  /// config.watchdog_cycles). end_cycle() is then the stall-detection
  /// point, not quiescence, and the liveness panics were skipped so the
  /// diagnosis could be built.
  bool watchdog_fired() const { return watchdog_fired_; }
  const std::string& watchdog_diagnosis() const { return watchdog_diagnosis_; }

  /// Builds the measurement report. Valid after run().
  MachineReport report() const;

 private:
  static void delivery_thunk(void* ctx, const net::Packet& packet);
  static void mem_probe_thunk(void* ctx, LocalAddr addr, std::uint32_t words);
  static void late_schedule_thunk(void* ctx, Cycle target, Cycle now);
  static void outage_begin_event(void* ctx, std::uint64_t pe, std::uint64_t end);
  static void outage_end_event(void* ctx, std::uint64_t pe, std::uint64_t);
  void build_watchdog_diagnosis(bool quiescent);
  /// End-of-run bookkeeping shared by run() and run_to(): watchdog
  /// diagnosis, quiescence checks, liveness panics, ledger invariants.
  void finish_run(sim::StopReason stop);

  /// Stable per-PE context for the Memory write probe.
  struct MemProbe {
    analysis::CheckContext* checker = nullptr;
    ProcId pe = 0;
  };

  MachineConfig config_;
  sim::SimContext sim_;
  /// Outlives network_ and pes_ (both hold lane pointers into it).
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<net::Network> network_;
  fault::FaultyNetwork* faulty_ = nullptr;  ///< aliases network_ when armed
  fault::FaultDomain fault_domain_;
  std::unique_ptr<analysis::CheckContext> checker_;  ///< null unless armed
  std::vector<MemProbe> mem_probes_;  ///< one per PE, checker runs only
  rng::StreamRegistry streams_;
  rt::EntryRegistry registry_;
  std::vector<std::shared_ptr<const isa::Program>> isa_programs_;
  std::vector<std::unique_ptr<proc::Emcy>> pes_;
  /// Reliability channels, one per PE, constructed only when the fault
  /// plan is armed with recovery on. The PEs see them as ChannelHooks.
  std::vector<std::unique_ptr<fault::ReliableChannel>> channels_;
  /// Per-destination delivery table handed to the outermost network:
  /// unchecked runs jump straight into Emcy::accept; checked runs route
  /// through delivery_thunk so the checker observes every ejection.
  std::vector<net::DeliveryEndpoint> delivery_;
  ComponentRegistry components_;
  trace::TraceSink* sink_;

  std::uint32_t barrier_entry_central_ = 0;
  std::uint32_t barrier_entry_tree_ = 0;
  std::uint32_t barrier_count_ = 0;  ///< central coordinator join count
  std::vector<rt::BarrierNode> tree_nodes_;

  Cycle end_cycle_ = 0;
  bool ran_ = false;
  bool watchdog_fired_ = false;
  std::string watchdog_diagnosis_;
};

}  // namespace emx
