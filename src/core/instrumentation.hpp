// Measurement structures mirroring the paper's evaluation:
//   * Figure 6  — communication time (exposed idle cycles);
//   * Figure 7  — overlap efficiency, derived from communication times;
//   * Figure 8  — execution-time distribution (computation / overhead /
//                 communication / switching);
//   * Figure 9  — average number of switches per processor, by type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/check_report.hpp"
#include "common/types.hpp"
#include "fault/fault_stats.hpp"
#include "network/network_iface.hpp"
#include "runtime/scheduler.hpp"

namespace emx {

/// Per-processor cycle decomposition. Idle cycles (no runnable thread)
/// are the exposed communication time — what multithreading overlaps.
struct ProcReport {
  Cycle compute = 0;
  Cycle overhead = 0;       ///< packet-generation instructions
  Cycle switching = 0;      ///< register save + MU dispatch + barrier checks
  Cycle read_service = 0;   ///< EM-4 mode only: reads serviced on the EXU
  Cycle comm = 0;           ///< idle (exposed communication) cycles
  rt::SwitchCounts switches;
  std::uint64_t reads_issued = 0;
  std::uint64_t packets_accepted = 0;
  std::uint64_t dma_reads = 0;
  std::uint64_t dma_block_reads = 0;
  std::uint64_t dma_writes = 0;
  std::uint64_t read_retries = 0;  ///< fault runs: requests retransmitted

  Cycle busy_total() const { return compute + overhead + switching + read_service; }
  Cycle total() const { return busy_total() + comm; }
};

struct MachineReport {
  Cycle total_cycles = 0;
  double clock_hz = kDefaultClockHz;
  std::vector<ProcReport> procs;
  net::NetworkStats network;
  std::uint64_t events_processed = 0;

  /// Fault injection & reliability (zeros unless the run had faults).
  bool fault_enabled = false;
  fault::FaultReport fault;

  /// Correctness checkers (empty unless the run armed --check).
  bool check_enabled = false;
  analysis::CheckReport check;

  /// Progress watchdog (config.watchdog_cycles). When it fired, the run
  /// ended at a non-quiescent stall; total_cycles is the detection point
  /// and `watchdog_diagnosis` holds the wait-graph / outstanding-request
  /// dump built by the Machine.
  bool watchdog_fired = false;
  std::string watchdog_diagnosis;

  /// Per-application measurements (frontier sizes, remote-gather counts,
  /// ...), folded in by the workload's contribute() after the run. Empty
  /// for runs driven without a workload plugin.
  struct AppMetric {
    std::string name;   ///< dotted, app-prefixed: "bfs.levels"
    std::string value;  ///< already formatted for display
  };
  std::vector<AppMetric> app_metrics;

  double seconds() const { return cycles_to_seconds(total_cycles, clock_hz); }

  // --- aggregates over processors ---
  double mean_comm_cycles() const;
  double mean_comm_seconds() const {
    return mean_comm_cycles() / clock_hz;
  }
  double mean_compute_cycles() const;
  double mean_overhead_cycles() const;
  double mean_switching_cycles() const;
  double mean_read_service_cycles() const;

  /// Average switch counts per processor (paper Fig. 9 y-axis).
  double mean_remote_read_switches() const;
  double mean_thread_sync_switches() const;
  double mean_iter_sync_switches() const;

  /// Figure-8 style percentage shares of total execution time
  /// (computation, overhead, communication, switching; read service is
  /// folded into switching for EM-4 runs).
  struct Shares {
    double compute = 0, overhead = 0, comm = 0, switching = 0;
  };
  Shares shares() const;

  std::string summary_text() const;

  /// "  bfs.levels = 7\n  ..." — one line per app metric, empty string
  /// when no workload contributed any.
  std::string app_metrics_text() const;
};

/// Overlap efficiency E = (Tcomm,1 - Tcomm,h) / Tcomm,1, in percent
/// (paper §4). `comm_1` is the single-thread communication time.
double overlap_efficiency_percent(double comm_1, double comm_h);

}  // namespace emx
