#include "core/overlap.hpp"

#include "common/assert.hpp"
#include "core/instrumentation.hpp"

namespace emx {

void OverlapSeries::add(std::uint32_t threads, double comm_seconds) {
  EMX_CHECK(threads >= 1, "thread count must be positive");
  raw_.push_back(OverlapPoint{threads, comm_seconds, 0.0});
}

bool OverlapSeries::has_baseline() const {
  for (const auto& p : raw_)
    if (p.threads == 1) return true;
  return false;
}

std::vector<OverlapPoint> OverlapSeries::points() const {
  EMX_CHECK(has_baseline(), "overlap series needs an h=1 baseline");
  double base = 0.0;
  for (const auto& p : raw_)
    if (p.threads == 1) base = p.comm_seconds;
  std::vector<OverlapPoint> out = raw_;
  for (auto& p : out)
    p.efficiency_percent = overlap_efficiency_percent(base, p.comm_seconds);
  return out;
}

std::uint32_t OverlapSeries::best_thread_count() const {
  EMX_CHECK(!raw_.empty(), "empty overlap series");
  const OverlapPoint* best = &raw_.front();
  for (const auto& p : raw_)
    if (p.comm_seconds < best->comm_seconds) best = &p;
  return best->threads;
}

double OverlapSeries::best_efficiency_percent() const {
  double best = 0.0;
  for (const auto& p : points())
    if (p.efficiency_percent > best) best = p.efficiency_percent;
  return best;
}

}  // namespace emx
