// MachineConfig: every timing and structural parameter of the simulated
// EM-X, with defaults taken from the paper (SPAA'97 §2.2–§2.3) and the
// EMC-Y/EM-X architecture papers it cites.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/check_config.hpp"
#include "common/types.hpp"
#include "fault/fault_config.hpp"

namespace emx {

/// Which network model transports packets.
enum class NetworkModel {
  kDetailed,  ///< per-hop switch-box simulation (exact contention)
  kFast,      ///< O(1)-per-packet endpoint-contention model
};

/// How remote read requests are serviced at the target processor.
enum class ReadServiceMode {
  kBypassDma,  ///< EM-X: IBU->MCU->OBU by-pass, zero EXU cycles (paper §2.2)
  kExuThread,  ///< EM-4: request runs as a 1-instruction thread on the EXU
};

/// Iteration-barrier implementation (ablation: central vs tree).
enum class BarrierTopology { kCentral, kTree };

struct MachineConfig {
  // --- structure ---
  std::uint32_t proc_count = 16;        ///< P; power of two for kDetailed
  std::size_t memory_words = 1u << 20;  ///< 4 MB static RAM per PE
  NetworkModel network = NetworkModel::kFast;
  ReadServiceMode read_service = ReadServiceMode::kBypassDma;
  BarrierTopology barrier = BarrierTopology::kCentral;
  std::size_t ibu_fifo_depth = 8;  ///< on-chip packet FIFO depth (per level)
  std::size_t obu_fifo_depth = 8;

  // --- clocking ---
  double clock_hz = kDefaultClockHz;  ///< 20 MHz EMC-Y

  // --- instruction & unit timings (cycles) ---
  Cycle packet_gen_cycles = 1;   ///< any send instruction (paper: one clock)
  Cycle local_mem_cycles = 1;    ///< local load/store
  Cycle obu_cycles = 1;          ///< OBU handoff from EXU/IBU to network
  Cycle switch_save_cycles = 4;  ///< save live registers on suspension
  Cycle mu_dispatch_cycles = 3;  ///< MU direct-matching dispatch (5 actions)
  Cycle match_store_cycles = 2;  ///< store first token to matching memory
  /// By-pass DMA one-shot service latency: request decode, memory
  /// arbitration against the EXU, read, reply formation. Together with
  /// the fabric this puts a single remote read at ~30 clocks (1.5 us),
  /// the paper's quoted 1-2 us / 20-40 clocks.
  Cycle dma_service_cycles = 16;
  /// By-pass DMA engine occupancy per serviced request — its sustained
  /// throughput, which bounds the reply rate under a read burst.
  /// Calibrated so that the 12-clock-run-length sorting loop stays
  /// reply-bound (the paper's ~35% sorting overlap ceiling) while the
  /// hundreds-of-clocks FFT loop never is (>95% overlap). See
  /// EXPERIMENTS.md, calibration notes.
  Cycle dma_interval_cycles = 32;
  /// Extra words of a block read stream out at this interval (the wire
  /// rate), amortising the per-request occupancy.
  Cycle dma_block_word_cycles = 2;
  Cycle exu_read_service_cycles = 24;  ///< EM-4 mode: EXU cycles per read
  Cycle self_loop_cycles = 2;    ///< OBU->IBU loopback for self packets
  Cycle port_interval_cycles = 2;///< network port: 1 packet per 2 cycles

  // --- runtime / synchronisation ---
  Cycle barrier_poll_interval = 24;  ///< re-check period while flag unset
  Cycle barrier_check_cycles = 2;    ///< flag test instructions per poll
  bool priority_replies = false;     ///< read replies use the high FIFO

  // --- fault injection & reliability (off unless any rate/window set) ---
  /// When `fault.enabled()`, the chosen network is wrapped in a
  /// fault::FaultyNetwork decorator and every PE runs the retransmit
  /// protocol; otherwise the subsystem is not even constructed and the
  /// simulated machine is cycle-identical to a build without it.
  fault::FaultConfig fault;

  // --- correctness checkers (off unless any checker armed) ---
  /// When `check.enabled()`, the Machine builds an analysis::CheckContext
  /// and every engine/memory/network hook reports into it; otherwise no
  /// shadow state exists at all. The checkers are pure observers, so even
  /// an armed run reports cycle counts identical to an unarmed one.
  analysis::CheckConfig check;

  // --- safety rails ---
  std::uint64_t max_events = 0;  ///< 0 = unlimited
  /// Progress watchdog window (cycles). When nonzero, a run that makes no
  /// forward progress — no thread executes, no packet is serviced or
  /// delivered — for this many cycles while events are still pending is
  /// stopped and diagnosed instead of spinning until the event budget.
  /// 0 = disarmed.
  Cycle watchdog_cycles = 0;

  /// Validates invariants (power-of-two P for detailed network, nonzero
  /// sizes); panics with a clear message on violation.
  void validate() const;

  std::string summary() const;

  /// The machine the paper evaluates on: P processors (16 or 64 in the
  /// figures), detailed per-hop Omega network.
  static MachineConfig paper_machine(std::uint32_t procs);

  /// The physical prototype: 80 EMC-Y processors ("built and operational
  /// at the Electrotechnical Laboratory since December 1995"). 80 is not
  /// a power of two, so the fast network model carries the fabric.
  static MachineConfig emx_prototype();
};

}  // namespace emx
