#include "core/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace emx {

std::vector<SweepPoint> run_sweep(
    const std::vector<std::uint64_t>& sizes,
    const std::vector<std::uint32_t>& thread_counts,
    const std::function<MachineReport(std::uint32_t threads, std::uint64_t n)>& run,
    bool parallel) {
  std::vector<SweepPoint> points(sizes.size() * thread_counts.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      auto& p = points[si * thread_counts.size() + ti];
      p.n = sizes[si];
      p.threads = thread_counts[ti];
    }
  }
  auto work = [&](std::size_t i) {
    points[i].report = run(points[i].threads, points[i].n);
  };
  if (parallel) {
    ThreadPool pool;
    parallel_for(pool, points.size(), work);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) work(i);
  }
  return points;
}

std::string size_label(std::uint64_t n) {
  char buf[32];
  if (n >= (1ull << 20) && n % (1ull << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%lluM",
                  static_cast<unsigned long long>(n >> 20));
  } else if (n >= 1024 && n % 1024 == 0) {
    std::snprintf(buf, sizeof buf, "%lluK",
                  static_cast<unsigned long long>(n >> 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::uint64_t parse_size_label(const std::string& label) {
  EMX_CHECK(!label.empty(), "empty size label");
  char* end = nullptr;
  const unsigned long long base = std::strtoull(label.c_str(), &end, 10);
  std::uint64_t mult = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k':
      case 'K':
        mult = 1ull << 10;
        break;
      case 'm':
      case 'M':
        mult = 1ull << 20;
        break;
      default:
        EMX_CHECK(false, "bad size suffix in: " + label);
    }
  }
  return base * mult;
}

}  // namespace emx
