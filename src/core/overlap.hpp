// Overlap analysis (paper §4, Figure 7).
//
// "Let Tcomm,h be the communication time for h threads. We define the
//  efficiency of overlapping as E = (Tcomm,1 - Tcomm,h) / Tcomm,1."
// The single-thread run is the basis: with one thread there is no other
// thread to switch to, so no overlap is possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace emx {

struct OverlapPoint {
  std::uint32_t threads = 1;
  double comm_seconds = 0.0;
  double efficiency_percent = 0.0;  ///< relative to the h=1 point
};

/// A communication-time series over thread counts, for one (app, P, n).
class OverlapSeries {
 public:
  void add(std::uint32_t threads, double comm_seconds);

  /// Computes efficiencies against the h==1 entry (which must exist).
  std::vector<OverlapPoint> points() const;

  /// The thread count with minimal communication time.
  std::uint32_t best_thread_count() const;
  double best_efficiency_percent() const;

  bool has_baseline() const;
  std::size_t size() const { return raw_.size(); }

 private:
  std::vector<OverlapPoint> raw_;  // efficiency filled lazily
};

}  // namespace emx
