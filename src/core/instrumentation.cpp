#include "core/instrumentation.hpp"

#include <cstdio>

namespace emx {

namespace {
template <typename Fn>
double mean_over(const std::vector<ProcReport>& procs, Fn fn) {
  if (procs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : procs) sum += static_cast<double>(fn(p));
  return sum / static_cast<double>(procs.size());
}
}  // namespace

double MachineReport::mean_comm_cycles() const {
  return mean_over(procs, [](const ProcReport& p) { return p.comm; });
}
double MachineReport::mean_compute_cycles() const {
  return mean_over(procs, [](const ProcReport& p) { return p.compute; });
}
double MachineReport::mean_overhead_cycles() const {
  return mean_over(procs, [](const ProcReport& p) { return p.overhead; });
}
double MachineReport::mean_switching_cycles() const {
  return mean_over(procs, [](const ProcReport& p) { return p.switching; });
}
double MachineReport::mean_read_service_cycles() const {
  return mean_over(procs, [](const ProcReport& p) { return p.read_service; });
}
double MachineReport::mean_remote_read_switches() const {
  return mean_over(procs, [](const ProcReport& p) { return p.switches.remote_read; });
}
double MachineReport::mean_thread_sync_switches() const {
  return mean_over(procs, [](const ProcReport& p) { return p.switches.thread_sync; });
}
double MachineReport::mean_iter_sync_switches() const {
  return mean_over(procs, [](const ProcReport& p) { return p.switches.iter_sync; });
}

MachineReport::Shares MachineReport::shares() const {
  Shares s;
  const double compute = mean_compute_cycles();
  const double overhead = mean_overhead_cycles();
  const double comm = mean_comm_cycles();
  const double sw = mean_switching_cycles() + mean_read_service_cycles();
  const double total = compute + overhead + comm + sw;
  if (total <= 0) return s;
  s.compute = 100.0 * compute / total;
  s.overhead = 100.0 * overhead / total;
  s.comm = 100.0 * comm / total;
  s.switching = 100.0 * sw / total;
  return s;
}

std::string MachineReport::summary_text() const {
  const Shares s = shares();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "cycles=%llu (%.6f s @ %.0f MHz)  "
      "compute=%.1f%% overhead=%.1f%% comm=%.1f%% switch=%.1f%%  "
      "switches/PE: read=%.0f thread-sync=%.0f iter-sync=%.0f  "
      "net: %llu pkts, mean latency %.1f cyc",
      static_cast<unsigned long long>(total_cycles), seconds(), clock_hz / 1e6,
      s.compute, s.overhead, s.comm, s.switching, mean_remote_read_switches(),
      mean_thread_sync_switches(), mean_iter_sync_switches(),
      static_cast<unsigned long long>(network.packets_delivered),
      network.latency.mean());
  std::string out = buf;
  if (fault_enabled) {
    char fb[256];
    std::snprintf(fb, sizeof fb,
                  "  faults: injected=%llu recovered=%llu/%llu retries=%llu "
                  "worst-recovery=%llu cyc",
                  static_cast<unsigned long long>(fault.injected_total()),
                  static_cast<unsigned long long>(fault.recovered),
                  static_cast<unsigned long long>(fault.injected_recoverable),
                  static_cast<unsigned long long>(fault.retries),
                  static_cast<unsigned long long>(fault.worst_recovery_cycles));
    out += fb;
  }
  if (watchdog_fired) {
    char wb[96];
    std::snprintf(wb, sizeof wb,
                  "  WATCHDOG: run stalled; stopped at cycle %llu",
                  static_cast<unsigned long long>(total_cycles));
    out += wb;
  }
  return out;
}

std::string MachineReport::app_metrics_text() const {
  std::string out;
  for (const AppMetric& m : app_metrics) {
    out += "  " + m.name + " = " + m.value + "\n";
  }
  return out;
}

double overlap_efficiency_percent(double comm_1, double comm_h) {
  if (comm_1 <= 0.0) return 0.0;
  return 100.0 * (comm_1 - comm_h) / comm_1;
}

}  // namespace emx
