#include "trace/trace.hpp"

namespace emx::trace {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kThreadInvoke:
      return "INVOKE";
    case EventType::kThreadEnd:
      return "END";
    case EventType::kReadIssue:
      return "READ_ISSUE";
    case EventType::kReadReturn:
      return "READ_RETURN";
    case EventType::kWriteIssue:
      return "WRITE_ISSUE";
    case EventType::kSpawnIssue:
      return "SPAWN_ISSUE";
    case EventType::kSuspendRead:
      return "SUSPEND_READ";
    case EventType::kSuspendGate:
      return "SUSPEND_GATE";
    case EventType::kSuspendBarrier:
      return "SUSPEND_BARRIER";
    case EventType::kSuspendYield:
      return "SUSPEND_YIELD";
    case EventType::kGateWake:
      return "GATE_WAKE";
    case EventType::kBarrierPoll:
      return "BARRIER_POLL";
    case EventType::kBarrierPass:
      return "BARRIER_PASS";
    case EventType::kComputeBegin:
      return "COMPUTE_BEGIN";
    case EventType::kComputeEnd:
      return "COMPUTE_END";
    case EventType::kFaultInject:
      return "FAULT_INJECT";
    case EventType::kReadTimeout:
      return "READ_TIMEOUT";
    case EventType::kReadRetry:
      return "READ_RETRY";
    case EventType::kMsgRetransmit:
      return "MSG_RETRANSMIT";
    case EventType::kAckSend:
      return "ACK_SEND";
    case EventType::kOutageBegin:
      return "OUTAGE_BEGIN";
    case EventType::kOutageEnd:
      return "OUTAGE_END";
  }
  return "?";
}

std::vector<TraceEvent> VectorTraceSink::filtered(EventType type) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.type == type) out.push_back(e);
  return out;
}

std::vector<TraceEvent> VectorTraceSink::for_proc(ProcId proc) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.proc == proc) out.push_back(e);
  return out;
}

}  // namespace emx::trace
