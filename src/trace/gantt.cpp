#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace emx::trace {

namespace {

enum class LaneState : char {
  kAbsent = ' ',
  kRunning = '#',
  kSwitching = 's',
  kSuspendedRead = '.',
  kSuspendedGate = 'g',
  kSuspendedBarrier = 'b',
  kRecovering = '!',
};

/// State transition implied by one event, from the lane's point of view.
LaneState state_after(EventType type, LaneState current) {
  switch (type) {
    case EventType::kThreadInvoke:
    case EventType::kReadReturn:
    case EventType::kGateWake:
    case EventType::kBarrierPass:
    case EventType::kComputeBegin:
    case EventType::kComputeEnd:
    case EventType::kReadIssue:
    case EventType::kWriteIssue:
    case EventType::kSpawnIssue:
      return LaneState::kRunning;
    case EventType::kSuspendRead:
      return LaneState::kSuspendedRead;
    case EventType::kSuspendGate:
      return LaneState::kSuspendedGate;
    case EventType::kSuspendBarrier:
    case EventType::kBarrierPoll:
      return LaneState::kSuspendedBarrier;
    case EventType::kSuspendYield:
      return LaneState::kSwitching;
    case EventType::kThreadEnd:
      return LaneState::kAbsent;
    case EventType::kReadTimeout:
    case EventType::kReadRetry:
    case EventType::kMsgRetransmit:
      // The request this thread sleeps on is being retransmitted: the wait
      // is now fault recovery, not plain fabric latency.
      return LaneState::kRecovering;
    case EventType::kFaultInject:
    case EventType::kAckSend:
    case EventType::kOutageBegin:
    case EventType::kOutageEnd:
      // NIC-level events; they never belong to a thread lane (emitted with
      // kInvalidThread) and are rendered on the per-PE net rows instead.
      return current;
  }
  return current;
}

/// True for events that show up on the per-PE "net" overlay rows.
bool is_net_event(EventType type) {
  switch (type) {
    case EventType::kFaultInject:
    case EventType::kReadRetry:
    case EventType::kMsgRetransmit:
    case EventType::kAckSend:
    case EventType::kOutageBegin:
    case EventType::kOutageEnd:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string render_gantt(const std::vector<TraceEvent>& events,
                         const GanttOptions& options) {
  if (events.empty()) return "(no trace events)\n";
  const Cycle t0 = options.start;
  Cycle t1 = options.end;
  if (t1 == 0) t1 = events.back().cycle + 1;
  if (t1 <= t0) return "(empty trace window)\n";
  const double scale =
      static_cast<double>(options.width) / static_cast<double>(t1 - t0);

  // Lane per (proc, thread), in order of first appearance.
  std::map<std::pair<ProcId, ThreadId>, std::size_t> lane_of;
  std::vector<std::pair<ProcId, ThreadId>> lanes;
  for (const auto& e : events) {
    const auto key = std::make_pair(e.proc, e.thread);
    if (e.thread == kInvalidThread) continue;
    if (lane_of.emplace(key, lanes.size()).second) lanes.push_back(key);
  }

  std::vector<std::string> rows(lanes.size(), std::string(options.width, ' '));
  std::vector<LaneState> state(lanes.size(), LaneState::kAbsent);
  std::vector<Cycle> state_since(lanes.size(), t0);

  auto paint = [&](std::size_t lane, Cycle from, Cycle to, LaneState s) {
    if (s == LaneState::kAbsent || to <= from || to <= t0 || from >= t1) return;
    from = std::max(from, t0);
    to = std::min(to, t1);
    auto c0 = static_cast<std::size_t>(static_cast<double>(from - t0) * scale);
    auto c1 = static_cast<std::size_t>(static_cast<double>(to - t0) * scale);
    c1 = std::max(c1, c0 + 1);
    for (std::size_t c = c0; c < std::min(c1, options.width); ++c)
      rows[lane][c] = static_cast<char>(s);
  };

  for (const auto& e : events) {
    if (e.thread == kInvalidThread) continue;
    const std::size_t lane = lane_of.at({e.proc, e.thread});
    paint(lane, state_since[lane], e.cycle, state[lane]);
    state[lane] = state_after(e.type, state[lane]);
    state_since[lane] = e.cycle;
  }
  for (std::size_t lane = 0; lane < lanes.size(); ++lane)
    paint(lane, state_since[lane], t1, state[lane]);

  // Per-PE network overlay rows: fault injections, retransmits, ACKs and
  // outage windows each get a distinct glyph so overlapping fault events
  // stay readable ('!' used to conflate all of them). Rows exist only for
  // PEs that saw at least one such event.
  std::map<ProcId, std::string> net_rows;
  auto col_of = [&](Cycle cycle) -> std::size_t {
    if (cycle < t0) cycle = t0;
    auto c = static_cast<std::size_t>(static_cast<double>(cycle - t0) * scale);
    return std::min(c, options.width - 1);
  };
  auto net_row = [&](ProcId proc) -> std::string& {
    return net_rows.try_emplace(proc, std::string(options.width, ' '))
        .first->second;
  };
  for (const auto& e : events) {
    if (!is_net_event(e.type) || e.cycle >= t1) continue;
    if (e.cycle < t0 && e.type != EventType::kOutageBegin) continue;
    switch (e.type) {
      case EventType::kFaultInject:
        net_row(e.proc)[col_of(e.cycle)] = '!';
        break;
      case EventType::kReadRetry:
        net_row(e.proc)[col_of(e.cycle)] = 'r';
        break;
      case EventType::kMsgRetransmit:
        net_row(e.proc)[col_of(e.cycle)] = 'R';
        break;
      case EventType::kAckSend:
        net_row(e.proc)[col_of(e.cycle)] = 'a';
        break;
      case EventType::kOutageBegin:
        // info carries the end cycle; paint the whole window (deferred
        // below so outage spans win over the point glyphs they overlap).
        break;
      default:
        break;
    }
  }
  for (const auto& e : events) {
    if (e.type != EventType::kOutageBegin) continue;
    const Cycle end = std::min<Cycle>(e.info, t1);
    if (end <= t0 || e.cycle >= t1) continue;
    std::string& row = net_row(e.proc);
    const std::size_t c0 = col_of(std::max(e.cycle, t0));
    const std::size_t c1 = std::max(col_of(end), c0 + 1);
    for (std::size_t c = c0; c < std::min(c1, options.width); ++c) row[c] = 'X';
  }

  std::string out;
  char head[96];
  std::snprintf(head, sizeof head, "cycles %llu..%llu, one column = %.1f cycles\n",
                static_cast<unsigned long long>(t0),
                static_cast<unsigned long long>(t1),
                1.0 / scale);
  out += head;
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    char label[32];
    std::snprintf(label, sizeof label, "P%-3u T%-4u |", lanes[lane].first,
                  lanes[lane].second);
    out += label;
    out += rows[lane];
    out += "|\n";
  }
  for (const auto& [proc, row] : net_rows) {
    char label[32];
    std::snprintf(label, sizeof label, "P%-3u net   |", proc);
    out += label;
    out += row;
    out += "|\n";
  }
  if (options.show_legend) {
    out += "legend: '#' running  's' switching  '.' await read  'g' await gate"
           "  'b' await barrier  '!' recovery in flight\n";
    if (!net_rows.empty()) {
      out += "net rows: '!' fault injected  'r' read retransmit  "
             "'R' msg retransmit  'a' ACK sent  'X' PE outage window\n";
    }
  }
  return out;
}

std::string render_event_log(const std::vector<TraceEvent>& events,
                             std::size_t max_lines) {
  std::string out;
  std::size_t count = 0;
  for (const auto& e : events) {
    if (count++ >= max_lines) {
      out += "... (truncated)\n";
      break;
    }
    char line[128];
    std::snprintf(line, sizeof line, "%8llu  P%-3u T%-4u %-15s info=0x%llx\n",
                  static_cast<unsigned long long>(e.cycle), e.proc, e.thread,
                  to_string(e.type), static_cast<unsigned long long>(e.info));
    out += line;
  }
  return out;
}

}  // namespace emx::trace
