// ASCII Gantt rendering of traced executions — reproduces the style of
// the paper's Figure 4 (multithreaded bitonic sorting timeline) and
// Figure 5 (multithreaded FFT timeline): one lane per (processor, thread),
// time flowing rightward, with running / switching / suspended phases.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace emx::trace {

struct GanttOptions {
  std::size_t width = 100;       ///< characters for the time axis
  Cycle start = 0;               ///< clip window start (cycles)
  Cycle end = 0;                 ///< 0 = last event
  bool show_legend = true;
};

/// Lane glyphs: '#' running (compute), 's' switching, '.' suspended on a
/// read, 'g' suspended on gate, 'b' suspended at barrier, ' ' not alive.
std::string render_gantt(const std::vector<TraceEvent>& events,
                         const GanttOptions& options = {});

/// One line per event, human-readable (debugging aid and timeline tests).
std::string render_event_log(const std::vector<TraceEvent>& events,
                             std::size_t max_lines = 200);

}  // namespace emx::trace
