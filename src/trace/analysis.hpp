// Post-run analysis over recorded traces: read-latency distributions and
// per-thread lifecycle statistics. Used by the micro benches and by
// tests; everything works on a plain vector of TraceEvents, so it also
// applies to traces captured from any custom workload.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace emx::trace {

/// Round-trip latencies recovered by pairing each thread's kReadIssue
/// with its next kReadReturn. Paired reads (two issues, one return per
/// operand) contribute one sample: first issue to first returning
/// operand.
struct ReadLatencyAnalysis {
  RunningStat latency;   ///< cycles, issue -> return
  Histogram histogram;   ///< same samples, bucketed

  explicit ReadLatencyAnalysis(double hist_max = 200.0, std::size_t buckets = 20)
      : histogram(0.0, hist_max, buckets) {}
};

ReadLatencyAnalysis analyze_read_latency(const std::vector<TraceEvent>& events,
                                         double hist_max = 200.0);

/// Per-thread lifecycle: when it started, when it ended, how many reads,
/// suspensions and barrier interactions it saw.
struct ThreadProfile {
  ProcId proc = 0;
  ThreadId thread = kInvalidThread;
  Cycle first_seen = 0;
  Cycle last_seen = 0;
  std::uint64_t reads = 0;
  std::uint64_t suspensions = 0;  ///< read + gate + barrier suspends
  std::uint64_t barrier_polls = 0;
  bool completed = false;

  Cycle lifetime() const { return last_seen - first_seen; }
};

std::vector<ThreadProfile> profile_threads(const std::vector<TraceEvent>& events);

/// Aggregate fractions of threads' lifetimes per machine: how much of
/// the traced window had at least one runnable thread per processor.
struct ConcurrencyStats {
  std::uint64_t threads = 0;
  std::uint64_t completed = 0;
  RunningStat lifetime_cycles;
  RunningStat suspensions_per_thread;
};

ConcurrencyStats summarize_concurrency(const std::vector<ThreadProfile>& profiles);

}  // namespace emx::trace
