#include "trace/analysis.hpp"

#include <map>

namespace emx::trace {

ReadLatencyAnalysis analyze_read_latency(const std::vector<TraceEvent>& events,
                                         double hist_max) {
  ReadLatencyAnalysis out(hist_max);
  // Outstanding first-issue cycle per (proc, thread). A paired read
  // issues twice before suspending; the earliest issue anchors the
  // window and the final return (the resuming one) closes it.
  std::map<std::pair<ProcId, ThreadId>, Cycle> outstanding;
  for (const auto& e : events) {
    const auto key = std::make_pair(e.proc, e.thread);
    switch (e.type) {
      case EventType::kReadIssue:
        outstanding.try_emplace(key, e.cycle);  // keep the first issue
        break;
      case EventType::kReadReturn: {
        const auto it = outstanding.find(key);
        if (it != outstanding.end()) {
          const auto sample = static_cast<double>(e.cycle - it->second);
          out.latency.add(sample);
          out.histogram.add(sample);
          outstanding.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<ThreadProfile> profile_threads(const std::vector<TraceEvent>& events) {
  std::map<std::pair<ProcId, ThreadId>, ThreadProfile> profiles;
  for (const auto& e : events) {
    if (e.thread == kInvalidThread) continue;
    auto& p = profiles[{e.proc, e.thread}];
    if (p.thread == kInvalidThread) {
      p.proc = e.proc;
      p.thread = e.thread;
      p.first_seen = e.cycle;
    }
    p.last_seen = e.cycle;
    switch (e.type) {
      case EventType::kReadIssue:
        ++p.reads;
        break;
      case EventType::kSuspendRead:
      case EventType::kSuspendGate:
      case EventType::kSuspendBarrier:
        ++p.suspensions;
        break;
      case EventType::kBarrierPoll:
        ++p.barrier_polls;
        break;
      case EventType::kThreadEnd:
        p.completed = true;
        break;
      default:
        break;
    }
  }
  std::vector<ThreadProfile> out;
  out.reserve(profiles.size());
  for (auto& [key, p] : profiles) out.push_back(p);
  return out;
}

ConcurrencyStats summarize_concurrency(const std::vector<ThreadProfile>& profiles) {
  ConcurrencyStats stats;
  for (const auto& p : profiles) {
    ++stats.threads;
    if (p.completed) ++stats.completed;
    stats.lifetime_cycles.add(static_cast<double>(p.lifetime()));
    stats.suspensions_per_thread.add(static_cast<double>(p.suspensions));
  }
  return stats;
}

}  // namespace emx::trace
