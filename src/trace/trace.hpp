// Event tracing: optional, zero-cost when disabled. Used to reproduce the
// paper's Figure 4 / Figure 5 execution timelines and by tests that assert
// on event ordering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace emx::trace {

enum class EventType : std::uint8_t {
  kThreadInvoke,   ///< a thread begins execution (MU invocation)
  kThreadEnd,      ///< a thread ran to completion
  kReadIssue,      ///< split-phase remote read request sent
  kReadReturn,     ///< read reply dispatched; thread resumes
  kWriteIssue,     ///< remote write packet sent
  kSpawnIssue,     ///< thread invocation packet sent
  kSuspendRead,    ///< thread suspended on an outstanding read
  kSuspendGate,    ///< thread suspended on the ordered-merge gate
  kSuspendBarrier, ///< thread suspended at the iteration barrier
  kSuspendYield,   ///< explicit thread switch (requeued behind the FIFO)
  kGateWake,       ///< gate predecessor woke this thread
  kBarrierPoll,    ///< barrier flag re-check (iteration-sync switch)
  kBarrierPass,    ///< thread passed the iteration barrier
  kComputeBegin,   ///< start of a charged computation span
  kComputeEnd,
  kFaultInject,    ///< the fault plan perturbed a packet (info: kind|seq<<8)
  kReadTimeout,    ///< an outstanding request's retransmit timer fired
  kReadRetry,      ///< the saved read request was retransmitted
  kMsgRetransmit,  ///< a write/invoke was retransmitted (info: req_seq)
  kAckSend,        ///< receiver NIC acknowledged a message (info: req_seq)
  kOutageBegin,    ///< PE entered fail-stop outage (info: end cycle)
  kOutageEnd,      ///< PE resumed from outage
};

const char* to_string(EventType type);

struct TraceEvent {
  Cycle cycle = 0;
  ProcId proc = 0;
  ThreadId thread = kInvalidThread;
  EventType type = EventType::kThreadInvoke;
  std::uint64_t info = 0;  ///< type-specific payload (address, cycles, peer)
};

/// Receives every trace event from the engines; implementations must be
/// cheap — they run inside the simulation loop.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Records everything into a vector (tests, Gantt rendering).
class VectorTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one type, in time order (the vector is already time-sorted
  /// because the simulator emits monotonically).
  std::vector<TraceEvent> filtered(EventType type) const;
  std::vector<TraceEvent> for_proc(ProcId proc) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace emx::trace
