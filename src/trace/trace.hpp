// Event tracing: optional, zero-cost when disabled. Used to reproduce the
// paper's Figure 4 / Figure 5 execution timelines and by tests that assert
// on event ordering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/component.hpp"
#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::trace {

enum class EventType : std::uint8_t {
  kThreadInvoke,   ///< a thread begins execution (MU invocation)
  kThreadEnd,      ///< a thread ran to completion
  kReadIssue,      ///< split-phase remote read request sent
  kReadReturn,     ///< read reply dispatched; thread resumes
  kWriteIssue,     ///< remote write packet sent
  kSpawnIssue,     ///< thread invocation packet sent
  kSuspendRead,    ///< thread suspended on an outstanding read
  kSuspendGate,    ///< thread suspended on the ordered-merge gate
  kSuspendBarrier, ///< thread suspended at the iteration barrier
  kSuspendYield,   ///< explicit thread switch (requeued behind the FIFO)
  kGateWake,       ///< gate predecessor woke this thread
  kBarrierPoll,    ///< barrier flag re-check (iteration-sync switch)
  kBarrierPass,    ///< thread passed the iteration barrier
  kComputeBegin,   ///< start of a charged computation span
  kComputeEnd,
  kFaultInject,    ///< the fault plan perturbed a packet (info: kind|seq<<8)
  kReadTimeout,    ///< an outstanding request's retransmit timer fired
  kReadRetry,      ///< the saved read request was retransmitted
  kMsgRetransmit,  ///< a write/invoke was retransmitted (info: req_seq)
  kAckSend,        ///< receiver NIC acknowledged a message (info: req_seq)
  kOutageBegin,    ///< PE entered fail-stop outage (info: end cycle)
  kOutageEnd,      ///< PE resumed from outage
};

const char* to_string(EventType type);

struct TraceEvent {
  Cycle cycle = 0;
  ProcId proc = 0;
  ThreadId thread = kInvalidThread;
  EventType type = EventType::kThreadInvoke;
  std::uint64_t info = 0;  ///< type-specific payload (address, cycles, peer)
};

/// Receives every trace event from the engines; implementations must be
/// cheap — they run inside the simulation loop.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Records everything into a vector (tests, Gantt rendering).
class VectorTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one type, in time order (the vector is already time-sorted
  /// because the simulator emits monotonically).
  std::vector<TraceEvent> filtered(EventType type) const;
  std::vector<TraceEvent> for_proc(ProcId proc) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Folds every event into a running CRC (optionally forwarding to another
/// sink). The snapshot subsystem uses it to pin the *entire* trace stream
/// in a few bytes: two runs are trace-identical iff (count, crc) match.
/// The "trace" component (when installed as the machine's sink): its
/// snapshot section pins the digest of every event emitted so far, so a
/// resumed run must re-emit the identical trace prefix.
class DigestSink final : public TraceSink, public Component {
 public:
  explicit DigestSink(TraceSink* next = nullptr) : next_(next) {}

  void on_event(const TraceEvent& event) override {
    // One contiguous buffer, one CRC call: identical digest to folding
    // the fields separately (CRC-32 chains over concatenation), but the
    // slice-by-8 kernel sees 30 bytes at once instead of 22 + 8.
    std::uint8_t buf[30];
    std::size_t n = 0;
    auto put64 = [&](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) buf[n++] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    auto put32 = [&](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) buf[n++] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put64(event.cycle);
    put32(event.proc);
    put32(event.thread);
    buf[n++] = static_cast<std::uint8_t>(event.type);
    put64(event.info);
    crc_ = snapshot::crc32(buf, n, crc_);
    ++count_;
    if (next_ != nullptr) next_->on_event(event);
  }

  std::uint64_t count() const { return count_; }
  std::uint32_t crc() const { return crc_; }

  void save(snapshot::Serializer& s) const {
    s.u64(count_);
    s.u32(crc_);
  }

  // --- Component ---
  const char* component_name() const override { return "trace"; }
  void save_state(ser::Serializer& s) const override { save(s); }

 private:
  TraceSink* next_;
  std::uint64_t count_ = 0;
  std::uint32_t crc_ = 0;
};

}  // namespace emx::trace
