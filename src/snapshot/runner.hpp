// The checkpoint/record/replay/resume run loop.
//
// run() owns the whole lifecycle emx_run and the snapshot tests share:
// build the machine from a RunManifest, construct + set up the workload,
// then drive Machine::run_to() through the union of the pause schedules —
// checkpoint boundaries, digest-frame boundaries, and the resume target —
// performing the right action at each pause. Completion runs the normal
// end-of-run pipeline (result verification, report) plus the snapshot
// extras (final digest frame, recording write-out, crash dumps).
//
// Exit-code mapping (RunResult::exit_code mirrors emx_run):
//   0 completed + verified    1 wrong result        2 bad input/corrupt file
//   3 checker findings        4 watchdog fired      5 snapshot/replay divergence
//   6 static verification findings (--verify-static=error)
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/instrumentation.hpp"
#include "sim/engine.hpp"
#include "snapshot/format.hpp"
#include "snapshot/manifest.hpp"
#include "verify/verifier.hpp"

namespace emx::trace {
class TraceSink;
}

namespace emx::snapshot {

struct RunOptions {
  RunManifest manifest;
  bool verify_result = true;

  /// Execution engine (--engine/--shards). Deliberately NOT part of the
  /// manifest: results, digests, snapshot bytes and manifest CRCs are
  /// engine-independent, so a checkpoint captured under one engine
  /// resumes under another and caches/dedup keyed on the manifest CRC
  /// stay engine-agnostic.
  sim::EngineSpec engine;

  /// Checkpointing: write a full snapshot every N cycles (0 = off) into
  /// `checkpoint_dir`. The directory is also where crash dumps land.
  Cycle checkpoint_every = 0;
  std::string checkpoint_dir;

  /// Resume: re-execute the manifest's recipe to the checkpoint's cycle,
  /// then byte-verify the rebuilt machine against its sections before
  /// continuing to completion. The caller must already have reconciled
  /// opts.manifest with the file's manifest (conflicts are exit 2).
  std::string resume_path;

  /// Record-replay. `digest_every` sets the recording frame interval; a
  /// replay always follows the interval stored in the recording.
  std::string record_path;
  std::string replay_path;
  Cycle digest_every = 65536;

  /// Progress heartbeat: append one CRC-framed record (cycle, live
  /// threads, checkpoint count) to `progress_path` every
  /// `progress_every` cycles, plus a final `done` record at completion.
  /// Off by default; arming it never changes a simulated cycle (pure
  /// observer, tested). The emx_serve daemon's `watch` streams these.
  Cycle progress_every = 0;
  std::string progress_path;

  /// Checkpoint on demand: install a SIGUSR1 handler and write a full
  /// checkpoint at the next pause boundary after the signal arrives
  /// (needs checkpoint_dir). The emx_serve daemon uses this to preempt:
  /// signal, wait for the fresh checkpoint, SIGKILL, resume later.
  bool checkpoint_signal = false;

  /// When non-empty, a one-line machine-readable result summary is
  /// written here (atomically) once the run completes: the manifest's
  /// cell parameters, cycle count, verification verdict, breakdown
  /// shares and trace digest. The content is deterministic — a resumed
  /// run emits byte-identical JSON to an uninterrupted one — which is
  /// what lets the sweep supervisor byte-compare aggregates as its
  /// crash-convergence oracle. Like --checkpoint-dir and --record, the
  /// path is probed up front so a typo is exit 2 before cycles burn.
  std::string result_json_path;

  /// Optional extra trace sink, chained behind the runner's DigestSink.
  trace::TraceSink* sink = nullptr;

  /// Pre-run static verification of every ISA program the workload
  /// build registered (Machine::isa_programs). kWarn prints findings to
  /// stderr and runs anyway; kError stops before the first cycle with
  /// exit code 6. Pure analysis either way: simulated cycles are
  /// byte-identical across all three modes.
  verify::GateMode verify_static = verify::GateMode::kWarn;
};

struct RunResult {
  int exit_code = 0;
  std::string error;  ///< human-readable cause for exit codes 2 and 5

  bool result_checked = false;  ///< result verification actually ran
  bool result_ok = true;
  Cycle end_cycle = 0;
  /// Digest of the full trace stream: two runs are trace-identical iff
  /// both pairs match (the round-trip determinism tests' oracle).
  std::uint64_t trace_events = 0;
  std::uint32_t trace_crc = 0;
  bool report_valid = false;  ///< false on the early exit-2 paths
  MachineReport report;

  std::vector<std::string> checkpoints_written;
  std::string crash_dump_path;  ///< non-empty when a dump was written
};

RunResult run(const RunOptions& opts);

/// The one-line result-summary JSON described at result_json_path (also
/// used by the supervisor's aggregate writer when re-serializing cached
/// cells). Deterministic for a deterministic run.
std::string result_json(const RunManifest& m, const RunResult& r);

/// Reads `path`, checks it is `expected` kind, and extracts the manifest
/// (and checkpoint cycle for checkpoints; recordings leave it 0). The
/// emx_run front end uses this for flag-conflict checks before handing
/// the reconciled manifest to run(). Returns "" on success.
std::string load_manifest(const std::string& path, FileKind expected,
                          RunManifest& manifest, Cycle& cycle);

}  // namespace emx::snapshot
