#include "snapshot/manifest.hpp"

#include <cstdio>

namespace emx::snapshot {

namespace {

const char* network_name(NetworkModel m) {
  return m == NetworkModel::kDetailed ? "detailed" : "fast";
}
const char* read_service_name(ReadServiceMode m) {
  return m == ReadServiceMode::kExuThread ? "em4" : "bypass";
}
const char* barrier_name(BarrierTopology b) {
  return b == BarrierTopology::kTree ? "tree" : "central";
}

}  // namespace

void RunManifest::save(Serializer& s) const {
  s.str(app);
  s.u64(size_per_proc);
  s.u32(threads);
  s.u32(iterations);
  s.u64(seed);
  s.boolean(block_reads);
  s.boolean(local_phase);

  s.u32(config.proc_count);
  s.u64(config.memory_words);
  s.u8(static_cast<std::uint8_t>(config.network));
  s.u8(static_cast<std::uint8_t>(config.read_service));
  s.u8(static_cast<std::uint8_t>(config.barrier));
  s.u64(config.ibu_fifo_depth);
  s.u64(config.obu_fifo_depth);
  s.f64(config.clock_hz);
  s.u64(config.packet_gen_cycles);
  s.u64(config.local_mem_cycles);
  s.u64(config.obu_cycles);
  s.u64(config.switch_save_cycles);
  s.u64(config.mu_dispatch_cycles);
  s.u64(config.match_store_cycles);
  s.u64(config.dma_service_cycles);
  s.u64(config.dma_interval_cycles);
  s.u64(config.dma_block_word_cycles);
  s.u64(config.exu_read_service_cycles);
  s.u64(config.self_loop_cycles);
  s.u64(config.port_interval_cycles);
  s.u64(config.barrier_poll_interval);
  s.u64(config.barrier_check_cycles);
  s.boolean(config.priority_replies);

  const auto& f = config.fault;
  s.u64(f.seed);
  s.f64(f.drop_rate);
  s.f64(f.duplicate_rate);
  s.f64(f.corrupt_rate);
  s.u64(f.jitter_max_cycles);
  s.u32(static_cast<std::uint32_t>(f.stalls.size()));
  for (const auto& w : f.stalls) {
    s.u32(w.src);
    s.u32(w.dst);
    s.u64(w.begin);
    s.u64(w.end);
  }
  s.u32(static_cast<std::uint32_t>(f.scheduled.size()));
  for (const auto& sch : f.scheduled) {
    s.u64(sch.nth);
    s.u8(static_cast<std::uint8_t>(sch.kind));
    s.boolean(sch.filtered);
    s.u8(static_cast<std::uint8_t>(sch.only));
  }
  s.u32(static_cast<std::uint32_t>(f.outages.size()));
  for (const auto& w : f.outages) {
    s.u32(w.pe);
    s.u64(w.begin);
    s.u64(w.end);
  }
  s.boolean(f.reliability);
  s.u64(f.timeout_cycles);
  s.u32(f.backoff_mult);
  s.u32(f.max_retries);

  s.boolean(config.check.memcheck);
  s.boolean(config.check.race);
  s.boolean(config.check.deadlock);
  s.boolean(config.check.lint);

  s.u64(config.max_events);
  s.u64(config.watchdog_cycles);
}

bool RunManifest::load(Deserializer& d) {
  app = d.str();
  size_per_proc = d.u64();
  threads = d.u32();
  iterations = d.u32();
  seed = d.u64();
  block_reads = d.boolean();
  local_phase = d.boolean();

  config.proc_count = d.u32();
  config.memory_words = d.u64();
  config.network = static_cast<NetworkModel>(d.u8());
  config.read_service = static_cast<ReadServiceMode>(d.u8());
  config.barrier = static_cast<BarrierTopology>(d.u8());
  config.ibu_fifo_depth = d.u64();
  config.obu_fifo_depth = d.u64();
  config.clock_hz = d.f64();
  config.packet_gen_cycles = d.u64();
  config.local_mem_cycles = d.u64();
  config.obu_cycles = d.u64();
  config.switch_save_cycles = d.u64();
  config.mu_dispatch_cycles = d.u64();
  config.match_store_cycles = d.u64();
  config.dma_service_cycles = d.u64();
  config.dma_interval_cycles = d.u64();
  config.dma_block_word_cycles = d.u64();
  config.exu_read_service_cycles = d.u64();
  config.self_loop_cycles = d.u64();
  config.port_interval_cycles = d.u64();
  config.barrier_poll_interval = d.u64();
  config.barrier_check_cycles = d.u64();
  config.priority_replies = d.boolean();

  auto& f = config.fault;
  f.seed = d.u64();
  f.drop_rate = d.f64();
  f.duplicate_rate = d.f64();
  f.corrupt_rate = d.f64();
  f.jitter_max_cycles = d.u64();
  // A corrupt count must not balloon allocation: each entry has a known
  // wire size, so counts are capped by the remaining payload.
  std::uint32_t n = d.u32();
  if (n > d.remaining() / 24) return false;
  f.stalls.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    fault::StallWindow w;
    w.src = d.u32();
    w.dst = d.u32();
    w.begin = d.u64();
    w.end = d.u64();
    f.stalls.push_back(w);
  }
  n = d.u32();
  if (n > d.remaining() / 11) return false;
  f.scheduled.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    fault::ScheduledFault sch;
    sch.nth = d.u64();
    sch.kind = static_cast<fault::FaultKind>(d.u8());
    sch.filtered = d.boolean();
    sch.only = static_cast<net::PacketKind>(d.u8());
    f.scheduled.push_back(sch);
  }
  n = d.u32();
  if (n > d.remaining() / 20) return false;
  f.outages.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    fault::OutageWindow w;
    w.pe = d.u32();
    w.begin = d.u64();
    w.end = d.u64();
    f.outages.push_back(w);
  }
  f.reliability = d.boolean();
  f.timeout_cycles = d.u64();
  f.backoff_mult = d.u32();
  f.max_retries = d.u32();

  config.check.memcheck = d.boolean();
  config.check.race = d.boolean();
  config.check.deadlock = d.boolean();
  config.check.lint = d.boolean();

  config.max_events = d.u64();
  config.watchdog_cycles = d.u64();
  return d.ok();
}

std::string RunManifest::diff(const RunManifest& other) const {
  std::string out;
  const auto str_field = [&out](const char* name, const std::string& a,
                                const std::string& b) {
    if (a != b) out += std::string("  ") + name + ": " + a + " vs " + b + "\n";
  };
  const auto u64_field = [&out](const char* name, std::uint64_t a,
                                std::uint64_t b) {
    if (a != b) {
      char line[160];
      std::snprintf(line, sizeof line, "  %s: %llu vs %llu\n", name,
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
      out += line;
    }
  };
  const auto f64_field = [&out](const char* name, double a, double b) {
    if (a != b) {
      char line[160];
      std::snprintf(line, sizeof line, "  %s: %g vs %g\n", name, a, b);
      out += line;
    }
  };
  const auto bool_field = [&str_field](const char* name, bool a, bool b) {
    str_field(name, a ? "true" : "false", b ? "true" : "false");
  };

  str_field("app", app, other.app);
  u64_field("size-per-proc", size_per_proc, other.size_per_proc);
  u64_field("threads", threads, other.threads);
  u64_field("iterations", iterations, other.iterations);
  u64_field("seed", seed, other.seed);
  bool_field("block-reads", block_reads, other.block_reads);
  bool_field("local-phase", local_phase, other.local_phase);

  u64_field("procs", config.proc_count, other.config.proc_count);
  u64_field("memory-words", config.memory_words, other.config.memory_words);
  str_field("network", network_name(config.network),
            network_name(other.config.network));
  str_field("read-service", read_service_name(config.read_service),
            read_service_name(other.config.read_service));
  str_field("barrier", barrier_name(config.barrier),
            barrier_name(other.config.barrier));
  u64_field("ibu-fifo-depth", config.ibu_fifo_depth, other.config.ibu_fifo_depth);
  u64_field("obu-fifo-depth", config.obu_fifo_depth, other.config.obu_fifo_depth);
  f64_field("clock-hz", config.clock_hz, other.config.clock_hz);
  u64_field("packet-gen", config.packet_gen_cycles, other.config.packet_gen_cycles);
  u64_field("local-mem", config.local_mem_cycles, other.config.local_mem_cycles);
  u64_field("obu", config.obu_cycles, other.config.obu_cycles);
  u64_field("switch-save", config.switch_save_cycles,
            other.config.switch_save_cycles);
  u64_field("mu-dispatch", config.mu_dispatch_cycles,
            other.config.mu_dispatch_cycles);
  u64_field("match-store", config.match_store_cycles,
            other.config.match_store_cycles);
  u64_field("dma-service", config.dma_service_cycles,
            other.config.dma_service_cycles);
  u64_field("dma-interval", config.dma_interval_cycles,
            other.config.dma_interval_cycles);
  u64_field("dma-block-word", config.dma_block_word_cycles,
            other.config.dma_block_word_cycles);
  u64_field("exu-read-service", config.exu_read_service_cycles,
            other.config.exu_read_service_cycles);
  u64_field("self-loop", config.self_loop_cycles, other.config.self_loop_cycles);
  u64_field("port-interval", config.port_interval_cycles,
            other.config.port_interval_cycles);
  u64_field("poll-interval", config.barrier_poll_interval,
            other.config.barrier_poll_interval);
  u64_field("barrier-check", config.barrier_check_cycles,
            other.config.barrier_check_cycles);
  bool_field("priority-replies", config.priority_replies,
             other.config.priority_replies);

  u64_field("fault-seed", config.fault.seed, other.config.fault.seed);
  f64_field("fault-drop-rate", config.fault.drop_rate,
            other.config.fault.drop_rate);
  f64_field("fault-dup-rate", config.fault.duplicate_rate,
            other.config.fault.duplicate_rate);
  f64_field("fault-corrupt-rate", config.fault.corrupt_rate,
            other.config.fault.corrupt_rate);
  u64_field("fault-jitter-max", config.fault.jitter_max_cycles,
            other.config.fault.jitter_max_cycles);
  u64_field("fault-stall-count", config.fault.stalls.size(),
            other.config.fault.stalls.size());
  u64_field("fault-scheduled-count", config.fault.scheduled.size(),
            other.config.fault.scheduled.size());
  u64_field("fault-outage-count", config.fault.outages.size(),
            other.config.fault.outages.size());
  if (config.fault.stalls.size() == other.config.fault.stalls.size()) {
    for (std::size_t i = 0; i < config.fault.stalls.size(); ++i) {
      const auto& a = config.fault.stalls[i];
      const auto& b = other.config.fault.stalls[i];
      if (a.src != b.src || a.dst != b.dst || a.begin != b.begin || a.end != b.end) {
        char line[96];
        std::snprintf(line, sizeof line, "  fault-stall[%zu]: windows differ\n", i);
        out += line;
      }
    }
  }
  if (config.fault.scheduled.size() == other.config.fault.scheduled.size()) {
    for (std::size_t i = 0; i < config.fault.scheduled.size(); ++i) {
      const auto& a = config.fault.scheduled[i];
      const auto& b = other.config.fault.scheduled[i];
      if (a.nth != b.nth || a.kind != b.kind || a.filtered != b.filtered ||
          a.only != b.only) {
        char line[96];
        std::snprintf(line, sizeof line, "  fault-scheduled[%zu]: entries differ\n",
                      i);
        out += line;
      }
    }
  }
  if (config.fault.outages.size() == other.config.fault.outages.size()) {
    for (std::size_t i = 0; i < config.fault.outages.size(); ++i) {
      const auto& a = config.fault.outages[i];
      const auto& b = other.config.fault.outages[i];
      if (a.pe != b.pe || a.begin != b.begin || a.end != b.end) {
        char line[96];
        std::snprintf(line, sizeof line, "  fault-outage[%zu]: windows differ\n", i);
        out += line;
      }
    }
  }
  bool_field("fault-reliability", config.fault.reliability,
             other.config.fault.reliability);
  u64_field("fault-timeout", config.fault.timeout_cycles,
            other.config.fault.timeout_cycles);
  u64_field("fault-backoff-mult", config.fault.backoff_mult,
            other.config.fault.backoff_mult);
  u64_field("fault-max-retries", config.fault.max_retries,
            other.config.fault.max_retries);

  str_field("check", config.check.summary(), other.config.check.summary());
  u64_field("max-events", config.max_events, other.config.max_events);
  u64_field("watchdog", config.watchdog_cycles, other.config.watchdog_cycles);
  return out;
}

}  // namespace emx::snapshot
