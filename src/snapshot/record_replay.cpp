#include "snapshot/record_replay.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "core/machine.hpp"

namespace emx::snapshot {

Recorder::Recorder(RunManifest manifest, Cycle interval)
    : manifest_(std::move(manifest)), interval_(interval) {
  EMX_CHECK(interval_ > 0, "recording interval must be positive");
}

void Recorder::frame(const Machine& machine, Cycle cycle) {
  const auto& components = machine.components().items();
  if (names_.empty()) {
    for (const Component* c : components) names_.push_back(c->component_name());
  }
  // The component set is a function of the machine config, which cannot
  // change mid-run; a mismatch here is a recorder bug, not bad input.
  EMX_CHECK(components.size() == names_.size(),
            "component set changed between digest frames");
  frames_.u64(cycle);
  for (const Component* c : components) frames_.u32(c->state_crc());
  ++frame_count_;
}

std::string Recorder::write(const std::string& path) const {
  SnapshotFile file;
  file.kind = FileKind::kRecording;

  Serializer header;
  manifest_.save(header);
  header.u64(interval_);
  file.add("manifest", header);

  Serializer components;
  components.u32(static_cast<std::uint32_t>(names_.size()));
  for (const auto& name : names_) components.str(name);
  file.add("components", components);

  Serializer frames;
  frames.u32(frame_count_);
  frames.bytes(frames_.data().data(), frames_.size());
  file.add("frames", frames);

  return file.write_file(path);
}

std::string ReplayVerifier::open(const SnapshotFile& file) {
  if (file.kind != FileKind::kRecording)
    return "not a recording (checkpoint files resume, they do not replay)";

  const Section* header = file.find("manifest");
  if (header == nullptr) return "recording has no manifest section";
  {
    Deserializer d(header->payload);
    if (!manifest_.load(d)) return "recording manifest is malformed";
    interval_ = d.u64();
    if (!d.exhausted()) return "recording manifest has trailing bytes";
    if (interval_ == 0) return "recording has a zero digest interval";
  }

  const Section* components = file.find("components");
  if (components == nullptr) return "recording has no components section";
  {
    Deserializer d(components->payload);
    const std::uint32_t n = d.u32();
    if (n > d.remaining()) return "recording component list is malformed";
    for (std::uint32_t i = 0; i < n; ++i) names_.push_back(d.str());
    if (!d.exhausted()) return "recording component list is malformed";
  }
  if (names_.empty()) return "recording digested no components";

  const Section* frames = file.find("frames");
  if (frames == nullptr) return "recording has no frames section";
  {
    Deserializer d(frames->payload);
    const std::uint32_t n = d.u32();
    const std::size_t frame_bytes = 8 + 4 * names_.size();
    if (static_cast<std::size_t>(n) * frame_bytes != d.remaining())
      return "recording frame table is malformed";
    for (std::uint32_t i = 0; i < n; ++i) {
      Frame f;
      f.cycle = d.u64();
      for (std::size_t c = 0; c < names_.size(); ++c) f.crcs.push_back(d.u32());
      frames_.push_back(std::move(f));
    }
    if (!d.exhausted()) return "recording frame table is malformed";
  }
  if (frames_.empty()) return "recording holds no digest frames";
  return "";
}

std::string ReplayVerifier::frame(const Machine& machine, Cycle cycle) {
  char buf[192];
  if (next_ >= frames_.size()) {
    std::snprintf(buf, sizeof buf,
                  "replay diverged: live run reached cycle %llu but the "
                  "recording ends at cycle %llu",
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(frames_.back().cycle));
    return buf;
  }
  const Frame& expected = frames_[next_];
  if (expected.cycle != cycle) {
    std::snprintf(buf, sizeof buf,
                  "replay diverged: frame %u was recorded at cycle %llu but "
                  "the replay paused at cycle %llu",
                  next_, static_cast<unsigned long long>(expected.cycle),
                  static_cast<unsigned long long>(cycle));
    return buf;
  }

  const auto& components = machine.components().items();
  if (components.size() != names_.size()) {
    std::snprintf(buf, sizeof buf,
                  "replay diverged: recording digested %zu components but "
                  "the replay machine has %zu",
                  names_.size(), components.size());
    return buf;
  }
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (components[c]->component_name() != names_[c]) {
      std::snprintf(buf, sizeof buf,
                    "replay diverged: component %zu is '%s' in the recording "
                    "but '%s' in the replay",
                    c, names_[c].c_str(), components[c]->component_name());
      return buf;
    }
    const std::uint32_t live = components[c]->state_crc();
    if (live != expected.crcs[c]) {
      std::snprintf(buf, sizeof buf,
                    "replay diverged: %s digest mismatch between cycles %llu "
                    "and %llu (recorded %08x, replay %08x)",
                    names_[c].c_str(),
                    static_cast<unsigned long long>(last_match_),
                    static_cast<unsigned long long>(cycle), expected.crcs[c],
                    live);
      return buf;
    }
  }
  ++next_;
  last_match_ = cycle;
  return "";
}

std::string ReplayVerifier::finish(Cycle end_cycle) const {
  if (next_ == frames_.size()) return "";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "replay diverged: live run ended at cycle %llu with %zu of "
                "%zu recorded frames unchecked (next expected at cycle %llu)",
                static_cast<unsigned long long>(end_cycle),
                frames_.size() - next_, frames_.size(),
                static_cast<unsigned long long>(frames_[next_].cycle));
  return buf;
}

}  // namespace emx::snapshot
