#include "snapshot/serializer.hpp"

#include <array>

namespace emx::snapshot {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace emx::snapshot
