#include "snapshot/runner.hpp"

#include <csignal>
#include <cstdio>
#include <memory>

#include "common/fsio.hpp"
#include "common/json.hpp"
#include "core/machine.hpp"
#include "snapshot/progress.hpp"
#include "snapshot/record_replay.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace.hpp"
#include "workloads/registry.hpp"

namespace emx::snapshot {

namespace {

/// RunManifest -> the workload layer's driver-independent parameters.
workloads::Params workload_params(const RunManifest& m) {
  workloads::Params p;
  p.size_per_proc = m.size_per_proc;
  p.threads = m.threads;
  p.iterations = m.iterations;
  p.seed = m.seed;
  p.block_reads = m.block_reads;
  p.local_phase = m.local_phase;
  return p;
}

std::string checkpoint_path(const std::string& dir, const std::string& app,
                            Cycle cycle) {
  char name[96];
  std::snprintf(name, sizeof name, "%s-c%012llu.emxsnap", app.c_str(),
                static_cast<unsigned long long>(cycle));
  return dir + "/" + name;
}

/// Pause granularity for checkpoint-on-signal: how many simulated
/// cycles may elapse between a SIGUSR1 arriving and the checkpoint
/// being written. Small enough that a preemptor waits milliseconds,
/// large enough that the pause itself costs nothing measurable.
constexpr Cycle kSignalPollCycles = 2048;

volatile std::sig_atomic_t g_checkpoint_requested = 0;
void on_checkpoint_signal(int) { g_checkpoint_requested = 1; }

/// Installs the SIGUSR1 checkpoint-on-demand handler for the duration
/// of one run() and restores the previous disposition on every exit
/// path (run() has many).
class SignalCheckpointGuard {
 public:
  explicit SignalCheckpointGuard(bool arm) : armed_(arm) {
    if (!armed_) return;
    g_checkpoint_requested = 0;
    struct sigaction sa = {};
    sa.sa_handler = on_checkpoint_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &sa, &old_);
  }
  ~SignalCheckpointGuard() {
    if (armed_) ::sigaction(SIGUSR1, &old_, nullptr);
  }
  SignalCheckpointGuard(const SignalCheckpointGuard&) = delete;
  SignalCheckpointGuard& operator=(const SignalCheckpointGuard&) = delete;

 private:
  bool armed_;
  struct sigaction old_ = {};
};

std::uint64_t live_thread_count(Machine& machine) {
  std::uint64_t total = 0;
  for (ProcId p = 0; p < machine.config().proc_count; ++p)
    total += machine.pe(p).engine().frames().live();
  return total;
}

}  // namespace

std::string load_manifest(const std::string& path, FileKind expected,
                          RunManifest& manifest, Cycle& cycle) {
  SnapshotFile file;
  std::string err = file.read_file(path);
  if (!err.empty()) return err;
  if (file.kind != expected) {
    return path + ": expected a " +
           (expected == FileKind::kCheckpoint ? "checkpoint" : "recording") +
           " but the file is a " +
           (file.kind == FileKind::kCheckpoint ? "checkpoint" : "recording");
  }
  cycle = 0;
  if (expected == FileKind::kCheckpoint)
    return read_header(file, manifest, cycle);

  const Section* header = file.find("manifest");
  if (header == nullptr) return path + ": recording has no manifest section";
  Deserializer d(header->payload);
  if (!manifest.load(d)) return path + ": recording manifest is malformed";
  return "";
}

RunResult run(const RunOptions& opts) {
  RunResult r;
  const RunManifest& m = opts.manifest;
  const auto fail = [&r](int code, std::string why) {
    r.exit_code = code;
    r.error = std::move(why);
    return r;
  };

  // --- load resume checkpoint / replay recording up front (exit 2) ---
  SnapshotFile resume_file;
  Cycle resume_cycle = 0;
  bool resume_pending = false;
  if (!opts.resume_path.empty()) {
    std::string err = resume_file.read_file(opts.resume_path);
    if (!err.empty()) return fail(2, err);
    if (resume_file.kind != FileKind::kCheckpoint)
      return fail(2, opts.resume_path + ": not a checkpoint file");
    if (resume_file.version < kFormatVersion)
      return fail(2, opts.resume_path + ": format v" +
                         std::to_string(resume_file.version) +
                         " checkpoint cannot be resumed by this build — "
                         "its state sections use an older encoding (v2 "
                         "changed the event-queue payload, v3 the fast "
                         "network's in-flight packets), so "
                         "byte-verification against a rebuilt machine can "
                         "never pass. Re-capture the "
                         "checkpoint with this build.");
    RunManifest saved;
    err = read_header(resume_file, saved, resume_cycle);
    if (!err.empty()) return fail(2, opts.resume_path + ": " + err);
    const std::string mismatch = saved.diff(m);
    if (!mismatch.empty())
      return fail(2, "resume manifest disagrees with the requested run "
                     "(snapshot vs flags):\n" +
                         mismatch);
    resume_pending = true;
  }

  ReplayVerifier replay;
  const bool replaying = !opts.replay_path.empty();
  if (replaying) {
    SnapshotFile rec;
    std::string err = rec.read_file(opts.replay_path);
    if (!err.empty()) return fail(2, err);
    if (rec.version < kFormatVersion && rec.kind == FileKind::kRecording)
      return fail(2, opts.replay_path + ": format v" +
                         std::to_string(rec.version) +
                         " recording cannot be replayed by this build — "
                         "its digest frames were computed over older "
                         "section encodings (pre-v2 event queue, pre-v3 "
                         "fast-network packets). Re-record with this build.");
    err = replay.open(rec);
    if (!err.empty()) return fail(2, opts.replay_path + ": " + err);
    const std::string mismatch = replay.manifest().diff(m);
    if (!mismatch.empty())
      return fail(2, "replay manifest disagrees with the requested run "
                     "(recording vs flags):\n" +
                         mismatch);
  }

  const bool recording = !opts.record_path.empty();
  const Cycle digest_interval = replaying ? replay.interval() : opts.digest_every;
  if ((recording || replaying) && digest_interval == 0)
    return fail(2, "--digest-every must be positive");

  // --- prove every output path is creatable + writable up front: a bad
  // --checkpoint-dir/--record/--result-json must be exit 2 before the
  // first simulated cycle, not an error after hours were burned ---
  const bool checkpointing = opts.checkpoint_every > 0;
  if (checkpointing && opts.checkpoint_dir.empty())
    return fail(2, "--checkpoint-every needs --checkpoint-dir");
  if (!opts.checkpoint_dir.empty()) {
    const std::string err = fsio::ensure_writable_dir(opts.checkpoint_dir);
    if (!err.empty()) return fail(2, "--checkpoint-dir: " + err);
  }
  if (!opts.record_path.empty()) {
    const std::string err = fsio::probe_writable_file(opts.record_path);
    if (!err.empty()) return fail(2, "--record: " + err);
  }
  if (!opts.result_json_path.empty()) {
    const std::string err = fsio::probe_writable_file(opts.result_json_path);
    if (!err.empty()) return fail(2, "--result-json: " + err);
  }
  if (opts.progress_every > 0 && opts.progress_path.empty())
    return fail(2, "--progress-every needs --progress-file");
  if (opts.checkpoint_signal && opts.checkpoint_dir.empty())
    return fail(2, "--checkpoint-on-signal needs --checkpoint-dir");
  // Arm the handler before the (potentially long) machine build: a
  // preemptor's SIGUSR1 landing in the setup window must latch a
  // request for the first poll boundary, not kill the process.
  SignalCheckpointGuard signal_guard(opts.checkpoint_signal);
  if (!opts.progress_path.empty()) {
    // Truncate atomically: every attempt rewrites the heartbeat from its
    // own start, and a reader never sees a half-replaced file.
    const std::string err = fsio::atomic_write_file(opts.progress_path, "");
    if (!err.empty()) return fail(2, "--progress-file: " + err);
  }

  // --- build the machine + workload from the manifest ---
  // Workloads that keep zero-latency host-side channels between PEs
  // declare themselves window-unsafe; they run the sequential loop
  // regardless of --engine (results are identical either way — that is
  // the engine contract — this just refuses the one case where the
  // window protocol could not hold it).
  sim::EngineSpec engine = opts.engine;
  if (const workloads::Spec* spec = workloads::Registry::instance().find(m.app);
      spec != nullptr && !spec->window_safe)
    engine.kind = sim::EngineSpec::Kind::kSequential;
  trace::DigestSink digest(opts.sink);
  Machine machine(m.config, &digest, engine);
  std::unique_ptr<workloads::Workload> workload;
  {
    std::string err;
    workload = workloads::build(machine, m.app, workload_params(m), err);
    if (workload == nullptr) return fail(2, err);
  }

  // --- static verification gate: every ISA program the build registered
  // is checked before the first cycle runs (pure analysis; cycle counts
  // are byte-identical whether or not the gate is armed) ---
  if (opts.verify_static != verify::GateMode::kOff) {
    std::string findings;
    std::size_t total = 0;
    const auto& programs = machine.isa_programs();
    for (std::size_t i = 0; i < programs.size(); ++i) {
      const verify::Report vr = verify::verify_program(
          *programs[i], m.app + " program #" + std::to_string(i));
      total += vr.findings.size();
      findings += vr.summary_text();
    }
    if (total > 0) {
      if (opts.verify_static == verify::GateMode::kError)
        return fail(6, "static verification found " + std::to_string(total) +
                           " problem(s) (--verify-static=error):\n" + findings);
      std::fprintf(stderr,
                   "emx: static verification found %zu problem(s) "
                   "(--verify-static=warn, running anyway):\n%s",
                   total, findings.c_str());
    }
  }

  Recorder recorder(m, digest_interval > 0 ? digest_interval : 1);

  // --- drive run_to() through the union of the pause schedules ---
  Cycle next_checkpoint = checkpointing ? opts.checkpoint_every : 0;
  Cycle next_digest = (recording || replaying) ? digest_interval : 0;
  Cycle next_progress = opts.progress_every > 0 ? opts.progress_every : 0;
  Cycle next_signal_poll = opts.checkpoint_signal ? kSignalPollCycles : 0;
  bool completed = false;
  while (!completed) {
    Cycle next = 0;  // 0 = run to completion
    const auto consider = [&next](Cycle c) {
      if (c > 0 && (next == 0 || c < next)) next = c;
    };
    if (next_checkpoint > 0) consider(next_checkpoint);
    if (next_digest > 0) consider(next_digest);
    if (next_progress > 0) consider(next_progress);
    if (next_signal_poll > 0) consider(next_signal_poll);
    if (resume_pending) consider(resume_cycle);

    completed = !machine.run_to(next);
    const Cycle here = completed ? machine.end_cycle() : next;

    if (resume_pending && (completed || here >= resume_cycle)) {
      // The fast-forward reached the checkpoint's cycle (or the run ended
      // first, e.g. resuming a crash dump): prove the rebuilt machine is
      // byte-identical to the saved one before going further.
      const std::string divergent = verify(machine, resume_file);
      if (!divergent.empty())
        return fail(5, "resume verification failed: section " + divergent);
      resume_pending = false;
      if (completed || here > resume_cycle) continue;  // not a scheduled pause
    }
    if (completed) break;

    if (next_digest == here) {
      if (recording) recorder.frame(machine, here);
      if (replaying) {
        const std::string err = replay.frame(machine, here);
        if (!err.empty()) return fail(5, err);
      }
      next_digest += digest_interval;
    }
    bool checkpointed_here = false;
    if (next_checkpoint == here) {
      const std::string path = checkpoint_path(opts.checkpoint_dir, m.app, here);
      const SnapshotFile ckpt = capture(machine, m, here);
      const std::string err = ckpt.write_file(path);
      if (!err.empty()) return fail(2, err);
      r.checkpoints_written.push_back(path);
      next_checkpoint += opts.checkpoint_every;
      checkpointed_here = true;
    }
    if (opts.checkpoint_signal && g_checkpoint_requested != 0) {
      // Checkpoint-on-demand (SIGUSR1): a preemptor asked for current
      // state. Skip the write if this pause already produced one.
      g_checkpoint_requested = 0;
      if (!checkpointed_here) {
        const std::string path =
            checkpoint_path(opts.checkpoint_dir, m.app, here);
        const SnapshotFile ckpt = capture(machine, m, here);
        const std::string err = ckpt.write_file(path);
        if (!err.empty()) return fail(2, err);
        r.checkpoints_written.push_back(path);
      }
    }
    if (next_signal_poll > 0)
      while (next_signal_poll <= here) next_signal_poll += kSignalPollCycles;
    if (next_progress == here) {
      ProgressRecord rec;
      rec.cycle = here;
      rec.live_threads = live_thread_count(machine);
      rec.checkpoints = r.checkpoints_written.size();
      const std::string err = fsio::append_line_fsync(
          opts.progress_path, format_progress_line(rec));
      if (!err.empty()) return fail(2, "--progress-file: " + err);
      next_progress += opts.progress_every;
    }
  }

  // --- completion: final digest frame, recording write-out, report ---
  r.end_cycle = machine.end_cycle();
  if (opts.progress_every > 0) {
    ProgressRecord rec;
    rec.cycle = r.end_cycle;
    rec.live_threads = live_thread_count(machine);
    rec.checkpoints = r.checkpoints_written.size();
    rec.done = true;
    const std::string err = fsio::append_line_fsync(
        opts.progress_path, format_progress_line(rec));
    if (!err.empty()) return fail(2, "--progress-file: " + err);
  }
  if (recording) {
    recorder.frame(machine, r.end_cycle);
    const std::string err = recorder.write(opts.record_path);
    if (!err.empty()) return fail(2, err);
  }
  if (replaying) {
    std::string err = replay.frame(machine, r.end_cycle);
    if (err.empty()) err = replay.finish(r.end_cycle);
    if (!err.empty()) return fail(5, err);
  }

  r.report = machine.report();
  workload->contribute(r.report);
  r.report_valid = true;
  r.trace_events = digest.count();
  r.trace_crc = digest.crc();
  // A watchdog-stopped run never quiesced; its result is undefined.
  if (opts.verify_result && !machine.watchdog_fired() &&
      workload->verifiable()) {
    r.result_checked = true;
    r.result_ok = workload->verify();
  }

  if (r.report.watchdog_fired) {
    r.exit_code = 4;
  } else if (r.result_checked && !r.result_ok) {
    r.exit_code = 1;
  } else if (r.report.check_enabled && !r.report.check.clean()) {
    r.exit_code = 3;
  }

  // Automatic crash dump: a stalled or buggy run leaves its full state
  // behind for offline forensics, exactly the sections a resume verifies.
  if ((r.exit_code == 3 || r.exit_code == 4) && !opts.checkpoint_dir.empty()) {
    const std::string path =
        opts.checkpoint_dir + "/crash-" + m.app + ".emxsnap";
    const SnapshotFile dump = capture(machine, m, r.end_cycle);
    if (dump.write_file(path).empty()) r.crash_dump_path = path;
  }

  // Machine-readable result summary, published atomically so a reader
  // (the sweep supervisor) never sees a torn file.
  if (!opts.result_json_path.empty()) {
    const std::string err =
        fsio::atomic_write_file(opts.result_json_path, result_json(m, r) + "\n");
    if (!err.empty()) {
      r.exit_code = 2;
      r.error = "--result-json: " + err;
    }
  }
  return r;
}

std::string result_json(const RunManifest& m, const RunResult& r) {
  Serializer ser;
  m.save(ser);
  char hex[16];
  std::snprintf(hex, sizeof hex, "%08x", ser.crc());

  json::Value v = json::Value::object();
  v.set("schema", json::Value::integer(1));
  v.set("app", json::Value::string(m.app));
  v.set("procs", json::Value::integer(m.config.proc_count));
  v.set("size_per_proc",
        json::Value::integer(static_cast<std::int64_t>(m.size_per_proc)));
  v.set("threads", json::Value::integer(m.threads));
  v.set("iterations", json::Value::integer(m.iterations));
  v.set("seed", json::Value::integer(static_cast<std::int64_t>(m.seed)));
  v.set("manifest_crc", json::Value::string(hex));
  v.set("exit_code", json::Value::integer(r.exit_code));
  v.set("cycles", json::Value::integer(static_cast<std::int64_t>(r.end_cycle)));
  // null when verification did not run (--verify=false, watchdog stop).
  v.set("verified", r.result_checked ? json::Value::boolean(r.result_ok)
                                     : json::Value());
  const MachineReport::Shares s = r.report.shares();
  v.set("compute_pct", json::Value::real(s.compute));
  v.set("overhead_pct", json::Value::real(s.overhead));
  v.set("comm_pct", json::Value::real(s.comm));
  v.set("switch_pct", json::Value::real(s.switching));
  v.set("trace_events",
        json::Value::integer(static_cast<std::int64_t>(r.trace_events)));
  std::snprintf(hex, sizeof hex, "%08x", r.trace_crc);
  v.set("trace_crc", json::Value::string(hex));
  return v.dump();
}

}  // namespace emx::snapshot
