#include "snapshot/runner.hpp"

#include <cstdio>
#include <memory>

#include "common/fsio.hpp"
#include "common/json.hpp"
#include "core/machine.hpp"
#include "snapshot/record_replay.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace.hpp"
#include "workloads/registry.hpp"

namespace emx::snapshot {

namespace {

/// RunManifest -> the workload layer's driver-independent parameters.
workloads::Params workload_params(const RunManifest& m) {
  workloads::Params p;
  p.size_per_proc = m.size_per_proc;
  p.threads = m.threads;
  p.iterations = m.iterations;
  p.seed = m.seed;
  p.block_reads = m.block_reads;
  p.local_phase = m.local_phase;
  return p;
}

std::string checkpoint_path(const std::string& dir, const std::string& app,
                            Cycle cycle) {
  char name[96];
  std::snprintf(name, sizeof name, "%s-c%012llu.emxsnap", app.c_str(),
                static_cast<unsigned long long>(cycle));
  return dir + "/" + name;
}

}  // namespace

std::string load_manifest(const std::string& path, FileKind expected,
                          RunManifest& manifest, Cycle& cycle) {
  SnapshotFile file;
  std::string err = file.read_file(path);
  if (!err.empty()) return err;
  if (file.kind != expected) {
    return path + ": expected a " +
           (expected == FileKind::kCheckpoint ? "checkpoint" : "recording") +
           " but the file is a " +
           (file.kind == FileKind::kCheckpoint ? "checkpoint" : "recording");
  }
  cycle = 0;
  if (expected == FileKind::kCheckpoint)
    return read_header(file, manifest, cycle);

  const Section* header = file.find("manifest");
  if (header == nullptr) return path + ": recording has no manifest section";
  Deserializer d(header->payload);
  if (!manifest.load(d)) return path + ": recording manifest is malformed";
  return "";
}

RunResult run(const RunOptions& opts) {
  RunResult r;
  const RunManifest& m = opts.manifest;
  const auto fail = [&r](int code, std::string why) {
    r.exit_code = code;
    r.error = std::move(why);
    return r;
  };

  // --- load resume checkpoint / replay recording up front (exit 2) ---
  SnapshotFile resume_file;
  Cycle resume_cycle = 0;
  bool resume_pending = false;
  if (!opts.resume_path.empty()) {
    std::string err = resume_file.read_file(opts.resume_path);
    if (!err.empty()) return fail(2, err);
    if (resume_file.kind != FileKind::kCheckpoint)
      return fail(2, opts.resume_path + ": not a checkpoint file");
    if (resume_file.version < 2)
      return fail(2, opts.resume_path + ": format v" +
                         std::to_string(resume_file.version) +
                         " checkpoint cannot be resumed by this build — "
                         "its event-queue encoding predates the v2 "
                         "canonical form, so byte-verification against a "
                         "rebuilt machine can never pass. Re-capture the "
                         "checkpoint with this build.");
    RunManifest saved;
    err = read_header(resume_file, saved, resume_cycle);
    if (!err.empty()) return fail(2, opts.resume_path + ": " + err);
    const std::string mismatch = saved.diff(m);
    if (!mismatch.empty())
      return fail(2, "resume manifest disagrees with the requested run "
                     "(snapshot vs flags):\n" +
                         mismatch);
    resume_pending = true;
  }

  ReplayVerifier replay;
  const bool replaying = !opts.replay_path.empty();
  if (replaying) {
    SnapshotFile rec;
    std::string err = rec.read_file(opts.replay_path);
    if (!err.empty()) return fail(2, err);
    if (rec.version < 2 && rec.kind == FileKind::kRecording)
      return fail(2, opts.replay_path + ": format v" +
                         std::to_string(rec.version) +
                         " recording cannot be replayed by this build — "
                         "its digest frames were computed over the pre-v2 "
                         "event-queue encoding. Re-record with this build.");
    err = replay.open(rec);
    if (!err.empty()) return fail(2, opts.replay_path + ": " + err);
    const std::string mismatch = replay.manifest().diff(m);
    if (!mismatch.empty())
      return fail(2, "replay manifest disagrees with the requested run "
                     "(recording vs flags):\n" +
                         mismatch);
  }

  const bool recording = !opts.record_path.empty();
  const Cycle digest_interval = replaying ? replay.interval() : opts.digest_every;
  if ((recording || replaying) && digest_interval == 0)
    return fail(2, "--digest-every must be positive");

  // --- prove every output path is creatable + writable up front: a bad
  // --checkpoint-dir/--record/--result-json must be exit 2 before the
  // first simulated cycle, not an error after hours were burned ---
  const bool checkpointing = opts.checkpoint_every > 0;
  if (checkpointing && opts.checkpoint_dir.empty())
    return fail(2, "--checkpoint-every needs --checkpoint-dir");
  if (!opts.checkpoint_dir.empty()) {
    const std::string err = fsio::ensure_writable_dir(opts.checkpoint_dir);
    if (!err.empty()) return fail(2, "--checkpoint-dir: " + err);
  }
  if (!opts.record_path.empty()) {
    const std::string err = fsio::probe_writable_file(opts.record_path);
    if (!err.empty()) return fail(2, "--record: " + err);
  }
  if (!opts.result_json_path.empty()) {
    const std::string err = fsio::probe_writable_file(opts.result_json_path);
    if (!err.empty()) return fail(2, "--result-json: " + err);
  }

  // --- build the machine + workload from the manifest ---
  trace::DigestSink digest(opts.sink);
  Machine machine(m.config, &digest);
  std::unique_ptr<workloads::Workload> workload;
  {
    std::string err;
    workload = workloads::build(machine, m.app, workload_params(m), err);
    if (workload == nullptr) return fail(2, err);
  }

  // --- static verification gate: every ISA program the build registered
  // is checked before the first cycle runs (pure analysis; cycle counts
  // are byte-identical whether or not the gate is armed) ---
  if (opts.verify_static != verify::GateMode::kOff) {
    std::string findings;
    std::size_t total = 0;
    const auto& programs = machine.isa_programs();
    for (std::size_t i = 0; i < programs.size(); ++i) {
      const verify::Report vr = verify::verify_program(
          *programs[i], m.app + " program #" + std::to_string(i));
      total += vr.findings.size();
      findings += vr.summary_text();
    }
    if (total > 0) {
      if (opts.verify_static == verify::GateMode::kError)
        return fail(6, "static verification found " + std::to_string(total) +
                           " problem(s) (--verify-static=error):\n" + findings);
      std::fprintf(stderr,
                   "emx: static verification found %zu problem(s) "
                   "(--verify-static=warn, running anyway):\n%s",
                   total, findings.c_str());
    }
  }

  Recorder recorder(m, digest_interval > 0 ? digest_interval : 1);

  // --- drive run_to() through the union of the pause schedules ---
  Cycle next_checkpoint = checkpointing ? opts.checkpoint_every : 0;
  Cycle next_digest = (recording || replaying) ? digest_interval : 0;
  bool completed = false;
  while (!completed) {
    Cycle next = 0;  // 0 = run to completion
    const auto consider = [&next](Cycle c) {
      if (c > 0 && (next == 0 || c < next)) next = c;
    };
    if (next_checkpoint > 0) consider(next_checkpoint);
    if (next_digest > 0) consider(next_digest);
    if (resume_pending) consider(resume_cycle);

    completed = !machine.run_to(next);
    const Cycle here = completed ? machine.end_cycle() : next;

    if (resume_pending && (completed || here >= resume_cycle)) {
      // The fast-forward reached the checkpoint's cycle (or the run ended
      // first, e.g. resuming a crash dump): prove the rebuilt machine is
      // byte-identical to the saved one before going further.
      const std::string divergent = verify(machine, resume_file);
      if (!divergent.empty())
        return fail(5, "resume verification failed: section " + divergent);
      resume_pending = false;
      if (completed || here > resume_cycle) continue;  // not a scheduled pause
    }
    if (completed) break;

    if (next_digest == here) {
      if (recording) recorder.frame(machine, here);
      if (replaying) {
        const std::string err = replay.frame(machine, here);
        if (!err.empty()) return fail(5, err);
      }
      next_digest += digest_interval;
    }
    if (next_checkpoint == here) {
      const std::string path = checkpoint_path(opts.checkpoint_dir, m.app, here);
      const SnapshotFile ckpt = capture(machine, m, here);
      const std::string err = ckpt.write_file(path);
      if (!err.empty()) return fail(2, err);
      r.checkpoints_written.push_back(path);
      next_checkpoint += opts.checkpoint_every;
    }
  }

  // --- completion: final digest frame, recording write-out, report ---
  r.end_cycle = machine.end_cycle();
  if (recording) {
    recorder.frame(machine, r.end_cycle);
    const std::string err = recorder.write(opts.record_path);
    if (!err.empty()) return fail(2, err);
  }
  if (replaying) {
    std::string err = replay.frame(machine, r.end_cycle);
    if (err.empty()) err = replay.finish(r.end_cycle);
    if (!err.empty()) return fail(5, err);
  }

  r.report = machine.report();
  workload->contribute(r.report);
  r.report_valid = true;
  r.trace_events = digest.count();
  r.trace_crc = digest.crc();
  // A watchdog-stopped run never quiesced; its result is undefined.
  if (opts.verify_result && !machine.watchdog_fired() &&
      workload->verifiable()) {
    r.result_checked = true;
    r.result_ok = workload->verify();
  }

  if (r.report.watchdog_fired) {
    r.exit_code = 4;
  } else if (r.result_checked && !r.result_ok) {
    r.exit_code = 1;
  } else if (r.report.check_enabled && !r.report.check.clean()) {
    r.exit_code = 3;
  }

  // Automatic crash dump: a stalled or buggy run leaves its full state
  // behind for offline forensics, exactly the sections a resume verifies.
  if ((r.exit_code == 3 || r.exit_code == 4) && !opts.checkpoint_dir.empty()) {
    const std::string path =
        opts.checkpoint_dir + "/crash-" + m.app + ".emxsnap";
    const SnapshotFile dump = capture(machine, m, r.end_cycle);
    if (dump.write_file(path).empty()) r.crash_dump_path = path;
  }

  // Machine-readable result summary, published atomically so a reader
  // (the sweep supervisor) never sees a torn file.
  if (!opts.result_json_path.empty()) {
    const std::string err =
        fsio::atomic_write_file(opts.result_json_path, result_json(m, r) + "\n");
    if (!err.empty()) {
      r.exit_code = 2;
      r.error = "--result-json: " + err;
    }
  }
  return r;
}

std::string result_json(const RunManifest& m, const RunResult& r) {
  Serializer ser;
  m.save(ser);
  char hex[16];
  std::snprintf(hex, sizeof hex, "%08x", ser.crc());

  json::Value v = json::Value::object();
  v.set("schema", json::Value::integer(1));
  v.set("app", json::Value::string(m.app));
  v.set("procs", json::Value::integer(m.config.proc_count));
  v.set("size_per_proc",
        json::Value::integer(static_cast<std::int64_t>(m.size_per_proc)));
  v.set("threads", json::Value::integer(m.threads));
  v.set("iterations", json::Value::integer(m.iterations));
  v.set("seed", json::Value::integer(static_cast<std::int64_t>(m.seed)));
  v.set("manifest_crc", json::Value::string(hex));
  v.set("exit_code", json::Value::integer(r.exit_code));
  v.set("cycles", json::Value::integer(static_cast<std::int64_t>(r.end_cycle)));
  // null when verification did not run (--verify=false, watchdog stop).
  v.set("verified", r.result_checked ? json::Value::boolean(r.result_ok)
                                     : json::Value());
  const MachineReport::Shares s = r.report.shares();
  v.set("compute_pct", json::Value::real(s.compute));
  v.set("overhead_pct", json::Value::real(s.overhead));
  v.set("comm_pct", json::Value::real(s.comm));
  v.set("switch_pct", json::Value::real(s.switching));
  v.set("trace_events",
        json::Value::integer(static_cast<std::int64_t>(r.trace_events)));
  std::snprintf(hex, sizeof hex, "%08x", r.trace_crc);
  v.set("trace_crc", json::Value::string(hex));
  return v.dump();
}

}  // namespace emx::snapshot
