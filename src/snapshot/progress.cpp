#include "snapshot/progress.hpp"

#include <cstdio>

#include "common/serializer.hpp"

namespace emx::snapshot {

namespace {
constexpr const char kCrcMarker[] = ",\"crc\":\"";
}

std::string format_progress_line(const ProgressRecord& rec) {
  char body[128];
  std::snprintf(body, sizeof body,
                "{\"cycle\":%llu,\"live\":%llu,\"ckpts\":%llu,\"done\":%d",
                static_cast<unsigned long long>(rec.cycle),
                static_cast<unsigned long long>(rec.live_threads),
                static_cast<unsigned long long>(rec.checkpoints),
                rec.done ? 1 : 0);
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x",
                ser::crc32(body, std::char_traits<char>::length(body)));
  return std::string(body) + kCrcMarker + crc + "\"}\n";
}

std::size_t parse_progress(std::string_view buf,
                           std::vector<ProgressRecord>& out,
                           std::string& err) {
  err.clear();
  std::size_t consumed = 0;
  while (consumed < buf.size()) {
    const std::size_t nl = buf.find('\n', consumed);
    if (nl == std::string_view::npos) break;  // torn tail: wait for more
    const std::string_view line = buf.substr(consumed, nl - consumed);

    const std::size_t marker = line.rfind(kCrcMarker);
    if (marker == std::string_view::npos) break;  // mid-write garbage tail
    const std::string_view body = line.substr(0, marker);
    const std::string_view tail =
        line.substr(marker + sizeof kCrcMarker - 1);
    char want[16];
    std::snprintf(want, sizeof want, "%08x",
                  ser::crc32(body.data(), body.size()));
    if (tail != std::string(want) + "\"}") break;  // torn: CRC not intact

    ProgressRecord rec;
    unsigned long long cycle = 0, live = 0, ckpts = 0;
    int done = 0;
    if (std::sscanf(std::string(body).c_str(),
                    "{\"cycle\":%llu,\"live\":%llu,\"ckpts\":%llu,\"done\":%d",
                    &cycle, &live, &ckpts, &done) != 4) {
      // The CRC vouches for the bytes, so a parse failure means the
      // writer emitted nonsense — surface it, don't spin on the tail.
      err = "progress line has a valid crc but a malformed body";
      return consumed;
    }
    rec.cycle = cycle;
    rec.live_threads = live;
    rec.checkpoints = ckpts;
    rec.done = done != 0;
    out.push_back(rec);
    consumed = nl + 1;
  }
  return consumed;
}

}  // namespace emx::snapshot
