// The snapshot container: a tagged, versioned, CRC-guarded section file.
//
// One format carries both artifact kinds the subsystem produces:
//   * checkpoints  — a run manifest plus one state section per machine
//     component, written by `emx_run --checkpoint-every` and by the
//     automatic crash dump on watchdog / checker exits;
//   * recordings   — a run manifest plus periodic per-component digest
//     frames, written by `emx_run --record` and diffed by `--replay`.
//
// Layout (all integers little-endian):
//   u32 magic "EMXS"   u32 format_version   u32 kind   u32 section_count
//   sections: { str name, u32 payload_size, payload bytes, u32 crc32 }
//   u32 file_crc  (over every byte before it)
//
// Versioning / compatibility policy (docs/CHECKPOINT.md):
//   * kFormatVersion bumps whenever any section's encoding changes;
//   * the reader keeps a loader shim per historical version —
//     supported_versions() must cover 1..kFormatVersion, and the golden
//     format test (tests/snapshot/golden_format_test.cpp) fails the build
//     of anyone who bumps the version without adding the shim;
//   * section payloads are opaque here; consumers version their own
//     encodings through the format version.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/serializer.hpp"

namespace emx::snapshot {

inline constexpr std::uint32_t kMagic = 0x53584D45u;  // "EMXS" little-endian
// v1: binary-heap EventQueue payload (pending events in heap-array
//     order, cancelled events saved as explicit tombstone records).
// v2: canonical EventQueue payload (live events sorted by sequence
//     number, cancelled events dropped) — the container layout is
//     unchanged, only the "sim" section's queue encoding differs, so the
//     v1 *container* still decodes but v1 state sections no longer match
//     a live machine and cannot be resumed or replayed against.
// v3: canonical "network" section for the fast model — in-flight packets
//     as per-source self-loop FIFOs and per-destination fabric queues
//     keyed by canonical injection id, replacing the v2 pool-slot
//     encoding whose slot indices depended on allocation history. The
//     encoding is engine-independent: sequential and parallel runs of
//     the same manifest produce byte-identical sections. Container
//     layout unchanged; v1/v2 containers still decode, their state
//     sections no longer resume or replay.
inline constexpr std::uint32_t kFormatVersion = 3;

enum class FileKind : std::uint32_t {
  kCheckpoint = 1,  ///< manifest + full per-component state sections
  kRecording = 2,   ///< manifest + periodic digest frames
};

struct Section {
  std::string name;
  std::vector<std::uint8_t> payload;

  std::uint32_t crc() const { return crc32(payload.data(), payload.size()); }
};

class SnapshotFile {
 public:
  FileKind kind = FileKind::kCheckpoint;
  /// Version read from disk (== kFormatVersion for freshly built files).
  std::uint32_t version = kFormatVersion;
  std::vector<Section> sections;

  void add(std::string name, const Serializer& s) {
    sections.push_back(Section{std::move(name), s.data()});
  }
  const Section* find(std::string_view name) const;

  std::vector<std::uint8_t> encode() const;

  /// Decodes `data` into *this. Returns "" on success, else a readable
  /// error (bad magic, unsupported version, truncated file, CRC mismatch
  /// naming the damaged section).
  std::string decode(const std::uint8_t* data, std::size_t size);

  /// Writes encode() to `path` atomically (unique temp file + fsync +
  /// rename; common/fsio.hpp). A crash mid-write leaves the previous
  /// file intact under `path`, never a truncated hybrid, and concurrent
  /// writers racing on one target cannot interleave. Returns "" on
  /// success, else an error message.
  std::string write_file(const std::string& path) const;
  /// Reads + decodes `path`. Returns "" on success, else an error.
  std::string read_file(const std::string& path);

  /// Every format version this build can load. The golden format test
  /// asserts it covers 1..kFormatVersion: bumping kFormatVersion without
  /// teaching decode() the old layout is a test failure, not a silent
  /// compatibility break.
  static std::vector<std::uint32_t> supported_versions();

 private:
  std::string decode_sections(Deserializer& d);
};

}  // namespace emx::snapshot
