#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/machine.hpp"

namespace emx::snapshot {

std::vector<std::pair<std::string, Serializer>> component_sections(
    const Machine& machine) {
  // The registry's registration order is the section order; every
  // stateful unit is in it (Machine asserts coverage at construction).
  // Machine-level saves carry no event-fn table: event payloads + times
  // still pin the queue state, and fn identity is re-established by
  // replay.
  std::vector<std::pair<std::string, Serializer>> out;
  out.reserve(machine.components().items().size());
  for (const Component* c : machine.components().items()) {
    out.emplace_back(c->component_name(), Serializer{});
    c->save_state(out.back().second);
  }
  return out;
}

SnapshotFile capture(const Machine& machine, const RunManifest& manifest,
                     Cycle cycle) {
  SnapshotFile file;
  file.kind = FileKind::kCheckpoint;

  Serializer header;
  manifest.save(header);
  header.u64(cycle);
  file.add("manifest", header);

  for (auto& [name, s] : component_sections(machine)) file.add(name, s);
  return file;
}

std::string read_header(const SnapshotFile& file, RunManifest& manifest,
                        Cycle& cycle) {
  const Section* header = file.find("manifest");
  if (header == nullptr) return "snapshot has no manifest section";
  Deserializer d(header->payload);
  if (!manifest.load(d)) return "snapshot manifest is malformed";
  cycle = d.u64();
  if (!d.exhausted()) return "snapshot manifest has trailing bytes";
  return "";
}

std::string verify(const Machine& machine, const SnapshotFile& file) {
  for (const auto& [name, live] : component_sections(machine)) {
    const Section* saved = file.find(name);
    if (saved == nullptr) return name + " (missing from snapshot)";
    if (live.data() == saved->payload) continue;
    // Name the first differing byte: with the per-component save layouts
    // documented, the offset localizes the divergent field.
    std::size_t at = 0;
    const std::size_t common =
        std::min(live.size(), saved->payload.size());
    while (at < common && live.data()[at] == saved->payload[at]) ++at;
    char detail[96];
    std::snprintf(detail, sizeof detail,
                  " (first differing byte at offset %zu; live %zu bytes, "
                  "saved %zu bytes)",
                  at, live.size(), saved->payload.size());
    return name + detail;
  }
  return "";
}

}  // namespace emx::snapshot
