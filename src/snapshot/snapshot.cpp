#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/machine.hpp"
#include "trace/trace.hpp"

namespace emx::snapshot {

std::vector<std::pair<std::string, Serializer>> component_sections(
    const Machine& machine, const trace::DigestSink* digest) {
  std::vector<std::pair<std::string, Serializer>> out;
  const auto section = [&out](std::string name) -> Serializer& {
    out.emplace_back(std::move(name), Serializer{});
    return out.back().second;
  };

  // Machine-level saves carry no fn table: event payloads + times still
  // pin the queue state, and fn identity is re-established by replay.
  machine.sim().save(section("sim"), nullptr);
  machine.streams().save(section("streams"));
  machine.network().save_state(section("network"));
  if (machine.fault_enabled()) machine.fault_domain().save(section("fault"));
  if (machine.check_enabled()) machine.checker()->save(section("checker"));
  if (digest != nullptr) digest->save(section("trace"));
  for (ProcId p = 0; p < machine.config().proc_count; ++p) {
    char name[16];
    std::snprintf(name, sizeof name, "pe%u", p);
    machine.pe(p).save(section(name));
  }
  return out;
}

SnapshotFile capture(const Machine& machine, const RunManifest& manifest,
                     Cycle cycle, const trace::DigestSink* digest) {
  SnapshotFile file;
  file.kind = FileKind::kCheckpoint;

  Serializer header;
  manifest.save(header);
  header.u64(cycle);
  file.add("manifest", header);

  for (auto& [name, s] : component_sections(machine, digest))
    file.add(name, s);
  return file;
}

std::string read_header(const SnapshotFile& file, RunManifest& manifest,
                        Cycle& cycle) {
  const Section* header = file.find("manifest");
  if (header == nullptr) return "snapshot has no manifest section";
  Deserializer d(header->payload);
  if (!manifest.load(d)) return "snapshot manifest is malformed";
  cycle = d.u64();
  if (!d.exhausted()) return "snapshot manifest has trailing bytes";
  return "";
}

std::string verify(const Machine& machine, const trace::DigestSink* digest,
                   const SnapshotFile& file) {
  for (const auto& [name, live] : component_sections(machine, digest)) {
    const Section* saved = file.find(name);
    if (saved == nullptr) return name + " (missing from snapshot)";
    if (live.data() == saved->payload) continue;
    // Name the first differing byte: with the per-component save layouts
    // documented, the offset localizes the divergent field.
    std::size_t at = 0;
    const std::size_t common =
        std::min(live.size(), saved->payload.size());
    while (at < common && live.data()[at] == saved->payload[at]) ++at;
    char detail[96];
    std::snprintf(detail, sizeof detail,
                  " (first differing byte at offset %zu; live %zu bytes, "
                  "saved %zu bytes)",
                  at, live.size(), saved->payload.size());
    return name + detail;
  }
  return "";
}

}  // namespace emx::snapshot
