// RunManifest — everything needed to rebuild a run from scratch.
//
// EM-X threads are C++20 coroutines; their frames cannot be portably
// serialized. A checkpoint therefore stores the *recipe* (this manifest:
// workload + every MachineConfig knob, seeds included) alongside the
// per-component state sections, and resume re-executes the recipe up to
// the checkpoint cycle, then verifies the rebuilt machine byte-for-byte
// against the saved sections. The manifest is the part that makes the
// re-execution possible; the sections are the part that proves it landed
// in the same state.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "common/serializer.hpp"

namespace emx::snapshot {

struct RunManifest {
  // --- workload ---
  std::string app;  ///< a workloads::Registry name ("sort", "bfs", ...)
  std::uint64_t size_per_proc = 0;
  std::uint32_t threads = 0;
  std::uint32_t iterations = 0;  ///< jacobi sweeps
  std::uint64_t seed = 0;
  bool block_reads = false;  ///< sort variant
  bool local_phase = true;   ///< fft local iterations

  // --- machine (every knob, including fault plan and checkers) ---
  MachineConfig config;

  void save(Serializer& s) const;
  /// Returns false (with the deserializer's error set) on truncated or
  /// malformed input. Vector sizes are bounds-checked against the
  /// remaining payload so a corrupt count cannot balloon allocation.
  bool load(Deserializer& d);

  /// Human-readable list of fields where *this differs from `other`, one
  /// "field: ours vs theirs" line each; empty when the manifests agree.
  /// Drives both the resume conflict report (explicit CLI flags vs the
  /// snapshot) and replay mismatch diagnostics.
  std::string diff(const RunManifest& other) const;
};

}  // namespace emx::snapshot
