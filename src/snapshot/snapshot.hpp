// Whole-machine checkpoint capture and verification.
//
// capture() walks every live component of a *paused* Machine (see
// Machine::run_to) and serializes each into its own named section:
//
//   manifest   RunManifest + the checkpoint cycle
//   sim        event queue, clock, watchdog ledger
//   streams    every registered RNG stream (workload + fault plan)
//   network    stats + in-flight packets (+ fault plan/ledger when armed)
//   fault      end-to-end delivery ledger (armed runs only)
//   checker    analysis shadow state (armed runs only)
//   trace      digest of every trace event emitted so far
//   pe0..peN   per-PE EMC-Y state (engine, FIFOs, DMA, memory digest,
//              reliable channel)
//
// Restore is verification, not mutation: coroutine frames cannot be
// portably revived, so resume re-executes the manifest's recipe up to the
// checkpoint cycle and verify() then byte-compares the rebuilt machine
// against every saved section, naming the first divergent component. The
// same sections double as crash-dump forensics (exit 3/4 dumps).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "snapshot/format.hpp"
#include "snapshot/manifest.hpp"

namespace emx {
class Machine;
}  // namespace emx

namespace emx::snapshot {

/// Serializes every live component in the Machine's registry order
/// ("sim", "streams", "network", armed-only "fault"/"checker", "trace"
/// when the machine's sink is a DigestSink, then "pe0".."peN"). Shared by
/// capture(), verify() and the record-replay digests so the three can
/// never drift apart — and shared with the Machine's own crash dumps and
/// stall diagnosis via the same registry.
std::vector<std::pair<std::string, Serializer>> component_sections(
    const Machine& machine);

/// Serializes the machine (paused at `cycle`) into a checkpoint file.
SnapshotFile capture(const Machine& machine, const RunManifest& manifest,
                     Cycle cycle);

/// Extracts the manifest and checkpoint cycle. Returns "" on success,
/// else a readable error (missing/corrupt manifest section).
std::string read_header(const SnapshotFile& file, RunManifest& manifest,
                        Cycle& cycle);

/// Re-serializes the live machine and byte-compares it against every
/// state section in `file`. Returns "" when identical; otherwise the name
/// of the first divergent section plus the first differing byte offset —
/// the restore contract's proof obligation and its failure diagnosis.
std::string verify(const Machine& machine, const SnapshotFile& file);

}  // namespace emx::snapshot
