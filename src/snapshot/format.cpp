#include "snapshot/format.hpp"

#include <cstdio>

#include "common/fsio.hpp"

namespace emx::snapshot {

namespace {

std::string format_msg(const char* fmt, unsigned long long a = 0,
                       unsigned long long b = 0) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

}  // namespace

const Section* SnapshotFile::find(std::string_view name) const {
  for (const auto& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<std::uint8_t> SnapshotFile::encode() const {
  Serializer out;
  out.u32(kMagic);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(kind));
  out.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    out.str(s.name);
    out.u32(static_cast<std::uint32_t>(s.payload.size()));
    out.bytes(s.payload.data(), s.payload.size());
    out.u32(s.crc());
  }
  out.u32(out.crc());
  return out.data();
}

std::string SnapshotFile::decode(const std::uint8_t* data, std::size_t size) {
  // Whole-file CRC first: it covers headers and section names, the
  // per-section CRCs only their payloads.
  if (size < 20) return "not a snapshot file (too short)";
  const std::size_t body = size - 4;
  std::uint32_t stored_file_crc = 0;
  for (std::size_t i = 0; i < 4; ++i)
    stored_file_crc |= static_cast<std::uint32_t>(data[body + i]) << (8 * i);
  if (stored_file_crc != crc32(data, body))
    return "file CRC mismatch (corrupt or truncated snapshot)";
  Deserializer d(data, body);
  if (d.u32() != kMagic) return "not a snapshot file (bad magic)";
  version = d.u32();
  // Version dispatch: one shim per historical layout. Adding version N
  // means adding a decode_vN *and* listing N in supported_versions().
  switch (version) {
    case 1:
    case 2:
    case 3:
      // Same container layout in all three; what changed is section
      // payload encodings — the "sim" event-queue payload in v2, the
      // fast model's "network" in-flight packet payload in v3. Consumers
      // that rebuild state (resume/replay) must refuse version <
      // kFormatVersion; pure container reads (manifest extraction,
      // section listing) work on any of them.
      return decode_sections(d);
    default:
      return format_msg(
          "snapshot format version %llu is newer than this build "
          "understands (max %llu)",
          version, kFormatVersion);
  }
}

std::string SnapshotFile::decode_sections(Deserializer& d) {
  const std::uint32_t raw_kind = d.u32();
  if (raw_kind != static_cast<std::uint32_t>(FileKind::kCheckpoint) &&
      raw_kind != static_cast<std::uint32_t>(FileKind::kRecording))
    return format_msg("unknown snapshot kind %llu", raw_kind);
  kind = static_cast<FileKind>(raw_kind);
  const std::uint32_t count = d.u32();
  sections.clear();
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section s;
    s.name = d.str();
    const std::uint32_t payload_size = d.u32();
    if (payload_size > d.remaining()) return "snapshot truncated mid-section";
    s.payload.resize(payload_size);
    d.bytes(s.payload.data(), payload_size);
    const std::uint32_t stored_crc = d.u32();
    if (!d.ok()) return "snapshot truncated mid-section";
    if (stored_crc != s.crc())
      return "section '" + s.name + "' failed its CRC check (corrupt snapshot)";
    sections.push_back(std::move(s));
  }
  if (d.remaining() != 0) return "trailing bytes after the last section";
  return "";
}

std::string SnapshotFile::write_file(const std::string& path) const {
  // Crash-atomic publish: unique temp file + fsync + rename + dir fsync.
  // A SIGKILL mid-checkpoint leaves at worst a stale .emxtmp file that no
  // snapshot glob matches; the name `path` only ever points at a complete,
  // CRC-valid snapshot — and concurrent writers (a timed-out worker's
  // orphan racing its restarted replacement) each own a private temp
  // file, so neither can corrupt what the other renames into place.
  const std::vector<std::uint8_t> bytes = encode();
  return fsio::atomic_write_file(path, bytes.data(), bytes.size());
}

std::string SnapshotFile::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open snapshot '" + path + "'";
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[65536];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + got);
  std::fclose(f);
  const std::string err = decode(bytes.data(), bytes.size());
  return err.empty() ? "" : "'" + path + "': " + err;
}

std::vector<std::uint32_t> SnapshotFile::supported_versions() {
  return {1, 2, 3};
}

}  // namespace emx::snapshot
