// Record-replay: pinning a run's evolution, not just its end state.
//
// A recording is a kRecording snapshot file holding the run manifest plus
// periodic digest frames: every `interval` cycles (and once more at run
// end) the Recorder CRCs each component's serialized state and appends
// {cycle, per-component crc}. The frames are a few dozen bytes each, so
// recording a multi-million-cycle run costs kilobytes.
//
// Replay re-executes the manifest's recipe with a ReplayVerifier pausing
// at the same cycle schedule. The first frame whose digests disagree
// names the divergent cycle window *and* the divergent component — "pe7
// diverged between cycles 196608 and 262144" — which turns "the run went
// wrong somewhere" into a bounded bisection target.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "snapshot/format.hpp"
#include "snapshot/manifest.hpp"

namespace emx {
class Machine;
}  // namespace emx

namespace emx::snapshot {

class Recorder {
 public:
  Recorder(RunManifest manifest, Cycle interval);

  /// Appends one digest frame for the machine's current state. `cycle` is
  /// the schedule point (a multiple of interval(), or the end cycle for
  /// the final frame) — the replay side pauses at the same points.
  void frame(const Machine& machine, Cycle cycle);

  Cycle interval() const { return interval_; }
  std::uint32_t frame_count() const { return frame_count_; }

  /// Builds the kRecording file and writes it. Returns "" on success.
  std::string write(const std::string& path) const;

 private:
  RunManifest manifest_;
  Cycle interval_;
  std::vector<std::string> names_;  ///< component order, fixed by 1st frame
  Serializer frames_;
  std::uint32_t frame_count_ = 0;
};

class ReplayVerifier {
 public:
  /// Parses a kRecording file. Returns "" on success, else an error.
  std::string open(const SnapshotFile& file);

  const RunManifest& manifest() const { return manifest_; }
  Cycle interval() const { return interval_; }
  std::uint32_t frame_count() const { return static_cast<std::uint32_t>(frames_.size()); }
  std::uint32_t frames_checked() const { return next_; }

  /// Digests the machine at a schedule point and compares against the
  /// next recorded frame. Returns "" on match; otherwise a divergence
  /// report naming the first divergent component and the cycle window.
  std::string frame(const Machine& machine, Cycle cycle);

  /// After the replayed run completes: "" when every recorded frame was
  /// consumed, else what is missing (the replay ended early/late).
  std::string finish(Cycle end_cycle) const;

 private:
  struct Frame {
    Cycle cycle = 0;
    std::vector<std::uint32_t> crcs;
  };

  RunManifest manifest_;
  Cycle interval_ = 0;
  std::vector<std::string> names_;
  std::vector<Frame> frames_;
  std::uint32_t next_ = 0;  ///< index of the next unchecked frame
  Cycle last_match_ = 0;    ///< cycle of the last frame that agreed
};

}  // namespace emx::snapshot
