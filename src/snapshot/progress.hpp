// CRC-framed run-progress records (`emx_run --progress-every`).
//
// A progress file is the run's heartbeat for outside observers: one
// self-framed JSON line per interval, appended while the simulation is
// paused at a schedule boundary, so a reader polling the file (the
// emx_serve daemon's `watch`, a shell `tail -f`) sees how far a worker
// has come without touching the worker itself.
//
// The framing is the same discipline as the jobs journal — CRC-32 of
// every byte before the `,"crc":"` marker — because the reader and the
// writer are different processes and the writer may be SIGKILLed (or
// preempted) mid-append: parse() consumes only whole, checksummed
// lines and leaves a torn tail for the next poll. Progress records are
// pure observation: arming them never changes a single simulated cycle
// (tested like the other pure observers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace emx::snapshot {

/// One heartbeat. `checkpoints` counts snapshots written so far this
/// invocation; `done` marks the final record, appended at completion
/// with the end-of-run cycle.
struct ProgressRecord {
  Cycle cycle = 0;
  std::uint64_t live_threads = 0;
  std::uint64_t checkpoints = 0;
  bool done = false;
};

/// Formats one record as a CRC-framed line (terminating newline
/// included): {"cycle":N,"live":N,"ckpts":N,"done":0|1,"crc":"xxxxxxxx"}
std::string format_progress_line(const ProgressRecord& rec);

/// Parses every complete, CRC-valid record out of `buf`, appending to
/// `out`. Returns the byte count consumed — a torn or still-being-
/// written tail is left unconsumed for the caller's next poll. A line
/// whose CRC frame is intact but whose body is malformed sets `err`
/// (broken writer, not a torn write) and stops there.
std::size_t parse_progress(std::string_view buf,
                           std::vector<ProgressRecord>& out,
                           std::string& err);

}  // namespace emx::snapshot
