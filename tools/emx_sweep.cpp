// emx_sweep — crash-tolerant sweep supervisor over emx_run workers.
//
//   $ emx_sweep --apps=sort,bfs --procs-list=4,8 --threads-list=1,2,4
//               --out=out/sweep --jobs=4 --timeout-s=120
//   $ emx_sweep --spec=sweep.json --out=out/sweep
//
// Expands an (app × h × n × P × seed) grid into manifest-keyed jobs and
// drives them through a bounded pool of emx_run processes with
// checkpointing armed. Killed or hung workers are retried with
// exponential backoff, resuming from their newest checkpoint; every
// state transition is journaled (fsync'd) so a killed supervisor can be
// re-invoked over the same --out directory and converge: finished cells
// come back from the result cache, half-done cells resume, and the
// final aggregate.json is byte-identical to an undisturbed run's.
//
// Exit codes: 0 every cell ok; 1 some cells exhausted their retries
// (aggregate.json still written, with failed:<reason> provenance);
// 2 bad input — unknown app/flag, unreadable spec, unwritable --out,
// or journal state from a different sweep.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "jobs/supervisor.hpp"
#include "workloads/registry.hpp"

namespace {

using emx::jobs::SweepSpec;

/// Splits "a,b,c" (empty string → empty list).
std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size() && !csv.empty()) {
    const std::size_t comma = csv.find(',', pos);
    out.push_back(csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

template <typename T>
bool parse_uint_list(const std::string& csv, std::vector<T>& out,
                     const char* flag) {
  out.clear();
  for (const std::string& item : split_list(csv)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (item.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "emx_sweep: --%s: '%s' is not a number\n", flag,
                   item.c_str());
      return false;
    }
    out.push_back(static_cast<T>(v));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  emx::CliFlags flags;
  flags
      .define("spec", "",
              "JSON sweep spec (docs/JOBS.md); grid flags below are "
              "ignored when set")
      .define("apps", "",
              "comma list of apps to sweep (see emx_run --list-apps)")
      .define("procs-list", "16", "comma list of processor counts")
      .define("threads-list", "",
              "comma list of threads/PE; empty = each app's default")
      .define("sizes-per-proc", "",
              "comma list of per-PE problem sizes; empty = app default")
      .define("seeds", "1", "comma list of workload seeds")
      .define("out", "out/sweep",
              "output directory (journal, cache, aggregate); reuse it to "
              "resume a killed sweep")
      .define("emx-run", "",
              "path to the emx_run worker binary (default: next to this "
              "binary)")
      .define("jobs", "2", "max concurrent worker processes")
      .define("retries", "3", "retry budget per cell after the first try")
      .define("timeout-s", "0",
              "per-job wall-clock timeout in seconds; 0 = none. Timed-out "
              "workers are SIGKILLed and resumed from their newest "
              "checkpoint")
      .define("backoff-ms", "250",
              "first retry delay; doubles per attempt up to 8000 ms")
      .define("checkpoint-every", "100000",
              "worker checkpoint period in cycles; 0 disarms resume")
      .define("cache-max-bytes", "0",
              "result-cache size cap with LRU eviction; entries this "
              "sweep references are pinned and never evicted. 0 = no cap")
      .define("keep-checkpoints", "false",
              "keep per-job checkpoints after success (default: cleaned)")
      .define("engine", "seq",
              "worker execution engine (seq | par); results and the "
              "aggregate are byte-identical either way")
      .define("shards", "0",
              "par engine: PE shards / host threads per worker (0 = one "
              "per hardware core)")
      .define("dry-run", "false",
              "print the expanded job list and exit without running")
      .define("quiet", "false", "suppress per-job progress on stderr");
  flags.parse(argc, argv);

  SweepSpec spec;
  std::string err;
  if (!flags.str("spec").empty()) {
    if (!SweepSpec::from_file(flags.str("spec"), spec, err)) {
      std::fprintf(stderr, "emx_sweep: %s\n", err.c_str());
      return 2;
    }
  } else {
    spec.apps = split_list(flags.str("apps"));
    if (spec.apps.empty()) {
      std::fprintf(
          stderr,
          "emx_sweep: need --apps or --spec (apps: %s)\n",
          emx::workloads::Registry::instance().name_list().c_str());
      return 2;
    }
    if (!parse_uint_list(flags.str("procs-list"), spec.procs, "procs-list") ||
        !parse_uint_list(flags.str("threads-list"), spec.threads,
                         "threads-list") ||
        !parse_uint_list(flags.str("sizes-per-proc"), spec.sizes_per_proc,
                         "sizes-per-proc") ||
        !parse_uint_list(flags.str("seeds"), spec.seeds, "seeds"))
      return 2;
    spec.base.iterations = 8;  // emx_run flag parity
    spec.base.seed = 1;
  }

  if (flags.boolean("dry-run")) {
    std::vector<emx::jobs::JobSpec> jobs;
    if (!spec.expand(jobs, err)) {
      std::fprintf(stderr, "emx_sweep: %s\n", err.c_str());
      return 2;
    }
    for (const auto& job : jobs) {
      std::string line = job.key;
      for (const std::string& f : emx::jobs::worker_flags(job.manifest))
        line += " " + f;
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  emx::jobs::SupervisorOptions opts;
  opts.spec = std::move(spec);
  opts.out_dir = flags.str("out");
  opts.emx_run = flags.str("emx-run");
  if (opts.emx_run.empty()) {
    // Default to the emx_run sitting next to this binary.
    std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    opts.emx_run =
        (slash == std::string::npos ? std::string(".")
                                    : self.substr(0, slash)) +
        "/emx_run";
  }
  opts.parallel = static_cast<unsigned>(flags.integer("jobs"));
  opts.max_retries = static_cast<unsigned>(flags.integer("retries"));
  opts.timeout_ms = flags.integer("timeout-s") * 1000;
  opts.backoff_ms = flags.integer("backoff-ms");
  opts.checkpoint_every =
      static_cast<std::uint64_t>(flags.integer("checkpoint-every"));
  opts.cache_max_bytes =
      static_cast<std::uint64_t>(flags.integer("cache-max-bytes"));
  opts.keep_checkpoints = flags.boolean("keep-checkpoints");
  opts.quiet = flags.boolean("quiet");
  opts.engine = flags.str("engine");
  opts.shards = static_cast<std::uint32_t>(flags.integer("shards"));
  if (opts.engine != "seq" && opts.engine != "par") {
    std::fprintf(stderr, "emx_sweep: --engine=%s is not an engine (want seq | par)\n",
                 opts.engine.c_str());
    return 2;
  }
  if (flags.integer("shards") < 0) {
    std::fprintf(stderr, "emx_sweep: --shards must be >= 0\n");
    return 2;
  }
  if (flags.integer("jobs") <= 0 || flags.integer("retries") < 0 ||
      flags.integer("timeout-s") < 0 || flags.integer("backoff-ms") < 0 ||
      flags.integer("checkpoint-every") < 0 ||
      flags.integer("cache-max-bytes") < 0) {
    std::fprintf(stderr,
                 "emx_sweep: --jobs must be >= 1 and --retries/--timeout-s/"
                 "--backoff-ms/--checkpoint-every/--cache-max-bytes must "
                 "be >= 0\n");
    return 2;
  }

  emx::jobs::SweepOutcome outcome;
  const int code = emx::jobs::run_sweep(opts, outcome, err);
  if (code == 2) {
    std::fprintf(stderr, "emx_sweep: %s\n", err.c_str());
    return 2;
  }
  std::size_t cached = 0, resumed = 0;
  for (const auto& cell : outcome.cells) {
    if (cell.status == "cached") ++cached;
    if (cell.status.rfind("resumed:", 0) == 0) ++resumed;
  }
  std::printf("sweep %s: %zu cells — %zu ok (%zu cached, %zu resumed), "
              "%zu failed\n",
              opts.spec.name.c_str(), outcome.cells.size(), outcome.ok,
              cached, resumed, outcome.failed);
  std::printf("aggregate:  %s\nprovenance: %s\n",
              outcome.aggregate_path.c_str(),
              outcome.provenance_path.c_str());
  return code;
}
