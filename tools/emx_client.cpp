// emx_client — command-line client for the emx_serve daemon.
//
//   $ emx_client submit --socket=/tmp/emx.sock --app=sort --priority=7
//   {"id":"j1","tenant":"default",...,"state":"queued","ok":true}
//   $ emx_client watch  --socket=/tmp/emx.sock --id=j1
//   $ emx_client result --socket=/tmp/emx.sock --id=j1 > result.json
//
// The first argument is the subcommand (submit, status, result, list,
// cancel, watch, drain); the rest are flags. `result` prints the
// blessed result JSON exactly as the worker's --result-json file held
// it — byte-identical, which is what lets scripts `cmp` a served run
// against a direct emx_run (the serve chaos gate does exactly that).
//
// Exit codes: 0 ok; 1 the job failed / has no result yet; 2 bad usage,
// connection failure, or a daemon-side error response.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/json.hpp"

namespace {

using emx::json::Value;

int connect_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  if (path.empty()) {
    err = "--socket is required";
    return -1;
  }
  if (path.size() >= sizeof addr.sun_path) {
    err = "--socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    err = "cannot connect to '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line, std::string& err) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of one newline-terminated line. Returns false on EOF
/// or error.
bool recv_line(int fd, std::string& buf, std::string& line, std::string& err) {
  while (true) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      err = "connection closed by daemon";
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Sends `request` and parses the first response line. Exits 2 on
/// transport trouble; returns the parsed response ({"ok":...}).
Value roundtrip(int fd, std::string& buf, const Value& request) {
  std::string err;
  if (!send_line(fd, request.dump() + "\n", err)) {
    std::fprintf(stderr, "emx_client: %s\n", err.c_str());
    std::exit(2);
  }
  std::string line;
  if (!recv_line(fd, buf, line, err)) {
    std::fprintf(stderr, "emx_client: %s\n", err.c_str());
    std::exit(2);
  }
  std::string perr;
  Value v = Value::parse(line, perr);
  if (!perr.empty() || !v.is_object()) {
    std::fprintf(stderr, "emx_client: bad response: %s\n", line.c_str());
    std::exit(2);
  }
  return v;
}

/// Exits 2 with the daemon's message when the response is not ok.
void need_ok(const Value& v) {
  if (const Value* ok = v.find("ok"); ok != nullptr && ok->as_bool()) return;
  const Value* msg = v.find("error");
  std::fprintf(stderr, "emx_client: %s\n",
               msg != nullptr ? msg->as_string().c_str() : "request refused");
  std::exit(2);
}

/// Parses a knob value the way JSON would (numbers, booleans), falling
/// back to a plain string ("detailed", "omega", ...).
Value knob_value(const std::string& text) {
  std::string perr;
  Value v = Value::parse(text, perr);
  if (perr.empty() &&
      (v.is_number() || v.is_bool() || v.is_string()))
    return v;
  return Value::string(text);
}

/// Streams watch events for `id` until the terminal "end" line, echoing
/// each to stdout. Returns the final job object.
Value stream_watch(int fd, std::string& buf, const std::string& id,
                   bool echo_progress) {
  Value req = Value::object();
  req.set("op", Value::string("watch"));
  req.set("id", Value::string(id));
  std::string err;
  if (!send_line(fd, req.dump() + "\n", err)) {
    std::fprintf(stderr, "emx_client: %s\n", err.c_str());
    std::exit(2);
  }
  while (true) {
    std::string line;
    if (!recv_line(fd, buf, line, err)) {
      std::fprintf(stderr, "emx_client: %s\n", err.c_str());
      std::exit(2);
    }
    std::string perr;
    Value v = Value::parse(line, perr);
    if (!perr.empty() || !v.is_object()) {
      std::fprintf(stderr, "emx_client: bad stream line: %s\n", line.c_str());
      std::exit(2);
    }
    if (const Value* e = v.find("error"); e != nullptr) {
      std::fprintf(stderr, "emx_client: %s\n", e->as_string().c_str());
      std::exit(2);
    }
    const Value* ev = v.find("event");
    const std::string kind = ev != nullptr ? ev->as_string() : "";
    if (kind == "end") {
      const Value* job = v.find("job");
      return job != nullptr ? *job : Value::object();
    }
    if (echo_progress) std::printf("%s\n", line.c_str());
  }
}

int job_exit_code(const Value& job) {
  const Value* state = job.find("state");
  return (state != nullptr && state->as_string() == "done") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // CliFlags has no positional arguments by design; the subcommand is
  // argv[1] and the flags parser sees the rest.
  const std::string cmd = argc >= 2 ? argv[1] : "";
  const bool known = cmd == "submit" || cmd == "status" || cmd == "result" ||
                     cmd == "list" || cmd == "cancel" || cmd == "watch" ||
                     cmd == "drain";
  if (!known && cmd != "--help") {
    std::fprintf(stderr,
                 "usage: emx_client <submit|status|result|list|cancel|watch|"
                 "drain> --socket=PATH [flags]\n");
    return 2;
  }

  emx::CliFlags flags;
  flags.define("socket", "", "daemon Unix-domain socket path (required)")
      .define("id", "", "job id for status/result/cancel/watch")
      .define("tenant", "default", "submit: tenant label for fair share")
      .define("priority", "0", "submit: priority 0..9; higher preempts")
      .define("app", "", "submit: workload name")
      .define("procs", "", "submit: processor count (default 16)")
      .define("threads", "", "submit: threads/PE (default: app registry)")
      .define("size-per-proc", "", "submit: per-PE problem size")
      .define("seed", "", "submit: workload seed (default 1)")
      .define("knobs", "",
              "submit: comma list of manifest knobs, name=value (same "
              "names as sweep-spec base; docs/JOBS.md)")
      .define("wait", "false",
              "submit: block until the job is terminal; drain: block "
              "until the daemon has exited");
  if (cmd == "--help") {
    std::printf("%s", flags.help_text("emx_client <cmd>").c_str());
    return 0;
  }
  std::vector<const char*> shifted;
  shifted.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) shifted.push_back(argv[i]);
  flags.parse(static_cast<int>(shifted.size()), shifted.data());

  std::string err;
  const int fd = connect_unix(flags.str("socket"), err);
  if (fd < 0) {
    std::fprintf(stderr, "emx_client: %s\n", err.c_str());
    return 2;
  }
  std::string buf;

  if (cmd == "submit") {
    if (flags.str("app").empty()) {
      std::fprintf(stderr, "emx_client: submit needs --app\n");
      return 2;
    }
    Value run = Value::object();
    run.set("app", Value::string(flags.str("app")));
    for (const char* axis : {"procs", "threads", "size-per-proc", "seed"}) {
      if (flags.str(axis).empty()) continue;
      std::string name = axis;
      for (char& c : name)
        if (c == '-') c = '_';
      run.set(name, Value::integer(flags.integer(axis)));
    }
    if (!flags.str("knobs").empty()) {
      std::string csv = flags.str("knobs");
      std::size_t pos = 0;
      while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string item = csv.substr(
            pos,
            comma == std::string::npos ? std::string::npos : comma - pos);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::fprintf(stderr,
                       "emx_client: --knobs entry '%s' is not name=value\n",
                       item.c_str());
          return 2;
        }
        run.set(item.substr(0, eq), knob_value(item.substr(eq + 1)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    Value req = Value::object();
    req.set("op", Value::string("submit"));
    req.set("tenant", Value::string(flags.str("tenant")));
    req.set("priority", Value::integer(flags.integer("priority")));
    req.set("run", std::move(run));
    Value resp = roundtrip(fd, buf, req);
    need_ok(resp);
    std::printf("%s\n", resp.dump().c_str());
    if (flags.boolean("wait")) {
      const Value* state = resp.find("state");
      if (state != nullptr && state->as_string() != "done" &&
          state->as_string() != "failed" &&
          state->as_string() != "canceled") {
        const Value* id = resp.find("id");
        const Value job = stream_watch(
            fd, buf, id != nullptr ? id->as_string() : "", false);
        std::printf("%s\n", job.dump().c_str());
        ::close(fd);
        return job_exit_code(job);
      }
      ::close(fd);
      return job_exit_code(resp);
    }
    ::close(fd);
    return 0;
  }

  if (cmd == "status" || cmd == "cancel") {
    if (flags.str("id").empty()) {
      std::fprintf(stderr, "emx_client: %s needs --id\n", cmd.c_str());
      return 2;
    }
    Value req = Value::object();
    req.set("op", Value::string(cmd));
    req.set("id", Value::string(flags.str("id")));
    Value resp = roundtrip(fd, buf, req);
    need_ok(resp);
    std::printf("%s\n", resp.dump().c_str());
    ::close(fd);
    return 0;
  }

  if (cmd == "result") {
    if (flags.str("id").empty()) {
      std::fprintf(stderr, "emx_client: result needs --id\n");
      return 2;
    }
    Value req = Value::object();
    req.set("op", Value::string("status"));
    req.set("id", Value::string(flags.str("id")));
    Value resp = roundtrip(fd, buf, req);
    need_ok(resp);
    const Value* result = resp.find("result");
    if (result == nullptr) {
      const Value* status = resp.find("status");
      std::fprintf(stderr, "emx_client: %s has no result (status: %s)\n",
                   flags.str("id").c_str(),
                   status != nullptr ? status->as_string().c_str() : "?");
      ::close(fd);
      return 1;
    }
    // Deterministic dump + newline reproduces the worker's result.json
    // byte for byte (the CI chaos gate cmp's on this).
    std::printf("%s\n", result->dump().c_str());
    ::close(fd);
    return 0;
  }

  if (cmd == "list") {
    Value req = Value::object();
    req.set("op", Value::string("list"));
    Value resp = roundtrip(fd, buf, req);
    need_ok(resp);
    std::printf("%s\n", resp.dump(2).c_str());
    ::close(fd);
    return 0;
  }

  if (cmd == "watch") {
    if (flags.str("id").empty()) {
      std::fprintf(stderr, "emx_client: watch needs --id\n");
      return 2;
    }
    const Value job = stream_watch(fd, buf, flags.str("id"), true);
    std::printf("%s\n", job.dump().c_str());
    ::close(fd);
    return job_exit_code(job);
  }

  // drain
  Value req = Value::object();
  req.set("op", Value::string("drain"));
  Value resp = roundtrip(fd, buf, req);
  need_ok(resp);
  std::printf("%s\n", resp.dump().c_str());
  ::close(fd);
  if (flags.boolean("wait")) {
    // The daemon exits (and unlinks its socket) once drained; poll
    // until connect fails.
    while (true) {
      std::string probe_err;
      const int probe = connect_unix(flags.str("socket"), probe_err);
      if (probe < 0) break;
      ::close(probe);
      ::usleep(100 * 1000);
    }
  }
  return 0;
}
