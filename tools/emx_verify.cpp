// emx_verify — standalone static verifier for EMC-Y thread programs.
//
//   $ emx_verify examples/isa/remote_read.emx
//   $ emx_verify --apps                 # every registered workload
//   $ emx_verify --apps=sort,bfs prog.emx
//
// Checks `.emx` assembler sources and/or the ISA programs registered by
// workload builds against the emx::verify CFG/dataflow checks
// (use-before-def, frame balance, barrier consistency, structural
// lints). Assembler *syntax* errors abort with the assembler's own
// file/line diagnostic; this tool's exit codes cover the semantic
// checks, mirroring emx_run's scheme:
//
//   0  everything verified clean
//   2  bad usage / unreadable file / unknown app
//   6  findings (any severity) — the same code emx_run uses for
//      --verify-static=error
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "isa/assembler.hpp"
#include "verify/verifier.hpp"
#include "workloads/registry.hpp"

using namespace emx;

namespace {

int usage(int code) {
  std::fprintf(
      stderr,
      "usage: emx_verify [--apps | --apps=name,...] [file.emx ...]\n"
      "\n"
      "Statically verifies EMC-Y programs: basic-block CFG construction\n"
      "plus use-before-def, frame-region balance, barrier-count\n"
      "consistency and structural lints. With --apps, builds the named\n"
      "workloads (default: every registered app: %s)\n"
      "and verifies each ISA program their builds register.\n"
      "\n"
      "exit codes: 0 clean, 2 bad usage/unreadable input, 6 findings\n",
      workloads::Registry::instance().name_list(", ").c_str());
  return code;
}

/// Verifies one program; prints its findings (or a clean line) and
/// accumulates totals.
void report(const verify::Report& r, std::size_t& findings,
            std::size_t& targets) {
  ++targets;
  if (r.clean()) {
    std::printf("%s: clean\n", r.name.c_str());
  } else {
    findings += r.findings.size();
    std::fputs(r.summary_text().c_str(), stdout);
  }
}

bool verify_file(const std::string& path, std::size_t& findings,
                 std::size_t& targets) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "emx_verify: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const isa::Program program = isa::assemble(text.str());
  report(verify::verify_program(program, path), findings, targets);
  return true;
}

bool verify_app(const std::string& name, std::size_t& findings,
                std::size_t& targets) {
  const workloads::Spec* spec = workloads::Registry::instance().find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "emx_verify: %s\n",
                 workloads::unknown_app_message(name).c_str());
    return false;
  }
  // A small machine at the workload's registered defaults: building the
  // app registers every ISA program it would run; no cycle is simulated.
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  workloads::Params params;
  params.size_per_proc = spec->default_size_per_proc;
  params.threads = spec->default_threads;
  std::string error;
  const auto workload = workloads::build(machine, name, params, error);
  if (workload == nullptr) {
    std::fprintf(stderr, "emx_verify: %s\n", error.c_str());
    return false;
  }
  const auto& programs = machine.isa_programs();
  if (programs.empty()) {
    std::printf("app %s: no ISA programs (coroutine-native workload)\n",
                name.c_str());
    ++targets;
    return true;
  }
  for (std::size_t i = 0; i < programs.size(); ++i) {
    report(verify::verify_program(*programs[i],
                                  "app " + name + " program #" +
                                      std::to_string(i)),
           findings, targets);
  }
  return true;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> apps;
  bool all_apps = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--apps") {
      all_apps = true;
    } else if (arg.rfind("--apps=", 0) == 0) {
      for (auto& name : split_csv(arg.substr(7))) apps.push_back(name);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "emx_verify: unknown flag %s\n", arg.c_str());
      return usage(2);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && apps.empty() && !all_apps) return usage(2);
  if (all_apps)
    for (const auto& spec : workloads::Registry::instance().specs())
      apps.push_back(spec.name);

  std::size_t findings = 0, targets = 0;
  for (const auto& file : files)
    if (!verify_file(file, findings, targets)) return 2;
  for (const auto& app : apps)
    if (!verify_app(app, findings, targets)) return 2;

  if (findings > 0) {
    std::printf("emx_verify: %zu finding(s) across %zu target(s)\n", findings,
                targets);
    return 6;
  }
  std::printf("emx_verify: %zu target(s) clean\n", targets);
  return 0;
}
