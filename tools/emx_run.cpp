// emx_run — the one-stop command-line driver for the EM-X simulator.
//
//   $ emx_run --app=sort --procs=16 --size-per-proc=1024 --threads=4
//   $ emx_run --app=sort --engine=par --shards=4   # same cycles, 4 host threads
//   $ emx_run --app=fft --procs=64 --threads=2 --network=detailed
//   $ emx_run --app=sort --checkpoint-every=100000 --checkpoint-dir=ck
//   $ emx_run --resume=ck/sort-c000000200000.emxsnap
//   $ emx_run --app=fft --record=fft.rr
//   $ emx_run --replay=fft.rr
//
// Exposes every MachineConfig knob, runs the chosen application, verifies
// the result, and prints the full measurement report (text or CSV).
//
// Checkpoint/resume and record/replay: a checkpoint stores the run recipe
// (manifest) plus every component's serialized state; --resume re-executes
// the recipe to the checkpoint cycle and byte-verifies the rebuilt machine
// before continuing. A recording stores periodic per-component digests;
// --replay re-executes and diffs them, naming the first divergent cycle
// window and component. With --resume/--replay, flags left at their
// defaults adopt the file's manifest; explicitly passed flags must agree
// with it (contradictions are exit 2, not silent overrides).
//
// Exit codes:
//   0  run completed, result verified (or --verify=false)
//   1  run completed but the application result is wrong
//   2  bad command line (unknown flag, out-of-range fault rate,
//      malformed --fault-outage spec, contradictory --resume/--replay
//      flags, corrupt snapshot file, ...)
//   3  result fine but an armed checker (--check) reported findings
//   4  the progress watchdog (--watchdog) stopped a stalled run;
//      the stall diagnosis is printed to stderr
//   5  snapshot divergence: --resume state verification failed, or
//      --replay digests differ from the recording
//   6  static verification findings (--verify-static=error): an ISA
//      program registered by the workload failed the emx::verify
//      CFG/dataflow checks before any cycle ran
#include <cstdio>
#include <cstdlib>

#include "emx.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "snapshot/runner.hpp"
#include "workloads/registry.hpp"

using namespace emx;

namespace {

void print_report(const MachineReport& report, bool csv) {
  if (!csv) {
    std::printf("%s\n", report.summary_text().c_str());
    const auto s = report.shares();
    std::printf(
        "breakdown: compute %.2f%%  overhead %.2f%%  comm %.2f%%  switch %.2f%%\n",
        s.compute, s.overhead, s.comm, s.switching);
  }
  Table table({"pe", "compute", "overhead", "switching", "read_service",
               "comm", "reads", "rr_switch", "ts_switch", "is_switch"});
  for (std::size_t p = 0; p < report.procs.size(); ++p) {
    const auto& pr = report.procs[p];
    table.add_row({std::to_string(p), Table::cell(pr.compute),
                   Table::cell(pr.overhead), Table::cell(pr.switching),
                   Table::cell(pr.read_service), Table::cell(pr.comm),
                   Table::cell(pr.reads_issued),
                   Table::cell(pr.switches.remote_read),
                   Table::cell(pr.switches.thread_sync),
                   Table::cell(pr.switches.iter_sync)});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_text().c_str(), stdout);
}

/// Parses "pe:begin:end[,pe:begin:end...]" into outage windows. Returns
/// false (after printing a clear error) on any malformed token.
bool parse_outages(const std::string& spec,
                   std::vector<fault::OutageWindow>& out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    unsigned long long pe = 0, begin = 0, end = 0;
    char trailing = 0;
    if (std::sscanf(token.c_str(), "%llu:%llu:%llu%c", &pe, &begin, &end,
                    &trailing) != 3) {
      std::fprintf(stderr,
                   "emx_run: malformed --fault-outage token '%s' "
                   "(want pe:begin:end)\n",
                   token.c_str());
      return false;
    }
    if (end <= begin) {
      std::fprintf(stderr,
                   "emx_run: --fault-outage window '%s' is empty "
                   "(end must be > begin)\n",
                   token.c_str());
      return false;
    }
    out.push_back(fault::OutageWindow{static_cast<ProcId>(pe),
                                      static_cast<Cycle>(begin),
                                      static_cast<Cycle>(end)});
    pos = comma + 1;
  }
  return true;
}

/// Range-checks every --fault-* value; prints a clear error and returns
/// false instead of tripping the library's EMX_CHECK abort.
bool validate_fault_flags(const MachineConfig& cfg) {
  const auto bad_rate = [](const char* name, double v) {
    std::fprintf(stderr, "emx_run: --%s=%g out of range (want 0..1)\n", name, v);
  };
  bool ok = true;
  if (cfg.fault.drop_rate < 0 || cfg.fault.drop_rate > 1) {
    bad_rate("fault-drop-rate", cfg.fault.drop_rate);
    ok = false;
  }
  if (cfg.fault.duplicate_rate < 0 || cfg.fault.duplicate_rate > 1) {
    bad_rate("fault-dup-rate", cfg.fault.duplicate_rate);
    ok = false;
  }
  if (cfg.fault.corrupt_rate < 0 || cfg.fault.corrupt_rate > 1) {
    bad_rate("fault-corrupt-rate", cfg.fault.corrupt_rate);
    ok = false;
  }
  if (ok && cfg.fault.drop_rate + cfg.fault.duplicate_rate +
                cfg.fault.corrupt_rate > 1.0) {
    std::fprintf(stderr,
                 "emx_run: fault rates sum to %g; drop+dup+corrupt must "
                 "not exceed 1\n",
                 cfg.fault.drop_rate + cfg.fault.duplicate_rate +
                     cfg.fault.corrupt_rate);
    ok = false;
  }
  for (const auto& w : cfg.fault.outages) {
    if (w.pe >= cfg.proc_count) {
      std::fprintf(stderr,
                   "emx_run: --fault-outage names pe %u but the machine "
                   "has %u PEs\n",
                   w.pe, cfg.proc_count);
      ok = false;
    }
  }
  return ok;
}

/// Applies flag values onto `m`. With `only_explicit`, only flags the
/// user actually passed are applied — the merge rule for --resume and
/// --replay, where defaults adopt the file's manifest and explicit flags
/// must agree with it. Returns false (error already printed) on bad
/// values.
bool apply_flags(const CliFlags& flags, snapshot::RunManifest& m,
                 bool only_explicit) {
  const auto want = [&](const char* name) {
    return !only_explicit || flags.explicitly_set(name);
  };
  if (want("app")) m.app = flags.str("app");
  if (want("size-per-proc"))
    m.size_per_proc = static_cast<std::uint64_t>(flags.integer("size-per-proc"));
  if (want("threads"))
    m.threads = static_cast<std::uint32_t>(flags.integer("threads"));
  if (want("iterations"))
    m.iterations = static_cast<std::uint32_t>(flags.integer("iterations"));
  if (want("seed")) m.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  if (want("block-reads")) m.block_reads = flags.boolean("block-reads");
  if (want("local-phase")) m.local_phase = flags.boolean("local-phase");

  if (want("procs"))
    m.config.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  if (want("network"))
    m.config.network = flags.str("network") == "detailed" ? NetworkModel::kDetailed
                                                          : NetworkModel::kFast;
  if (want("read-service"))
    m.config.read_service = flags.str("read-service") == "em4"
                                ? ReadServiceMode::kExuThread
                                : ReadServiceMode::kBypassDma;
  if (want("barrier"))
    m.config.barrier = flags.str("barrier") == "tree" ? BarrierTopology::kTree
                                                      : BarrierTopology::kCentral;
  if (want("priority-replies"))
    m.config.priority_replies = flags.boolean("priority-replies");
  if (want("switch-save"))
    m.config.switch_save_cycles = static_cast<Cycle>(flags.integer("switch-save"));
  if (want("dma-service"))
    m.config.dma_service_cycles = static_cast<Cycle>(flags.integer("dma-service"));
  if (want("dma-interval"))
    m.config.dma_interval_cycles =
        static_cast<Cycle>(flags.integer("dma-interval"));
  if (want("poll-interval"))
    m.config.barrier_poll_interval =
        static_cast<Cycle>(flags.integer("poll-interval"));

  if (want("fault-drop-rate"))
    m.config.fault.drop_rate = flags.real("fault-drop-rate");
  if (want("fault-dup-rate"))
    m.config.fault.duplicate_rate = flags.real("fault-dup-rate");
  if (want("fault-corrupt-rate"))
    m.config.fault.corrupt_rate = flags.real("fault-corrupt-rate");
  if (want("fault-jitter-max")) {
    if (flags.integer("fault-jitter-max") < 0) {
      std::fprintf(stderr, "emx_run: --fault-jitter-max must be >= 0\n");
      return false;
    }
    m.config.fault.jitter_max_cycles =
        static_cast<Cycle>(flags.integer("fault-jitter-max"));
  }
  if (want("fault-seed"))
    m.config.fault.seed = static_cast<std::uint64_t>(flags.integer("fault-seed"));
  if (want("fault-timeout")) {
    if (flags.integer("fault-timeout") < 1) {
      std::fprintf(stderr, "emx_run: --fault-timeout must be >= 1 cycle\n");
      return false;
    }
    m.config.fault.timeout_cycles =
        static_cast<Cycle>(flags.integer("fault-timeout"));
  }
  if (want("fault-max-retries")) {
    if (flags.integer("fault-max-retries") < 1) {
      std::fprintf(stderr, "emx_run: --fault-max-retries must be >= 1\n");
      return false;
    }
    m.config.fault.max_retries =
        static_cast<std::uint32_t>(flags.integer("fault-max-retries"));
  }
  if (want("fault-outage")) {
    m.config.fault.outages.clear();
    if (!parse_outages(flags.str("fault-outage"), m.config.fault.outages))
      return false;
  }
  if (want("fault-reliability"))
    m.config.fault.reliability = flags.boolean("fault-reliability");

  if (want("watchdog")) {
    if (flags.integer("watchdog") < 0) {
      std::fprintf(stderr, "emx_run: --watchdog must be >= 0\n");
      return false;
    }
    m.config.watchdog_cycles = static_cast<Cycle>(flags.integer("watchdog"));
  }
  if (want("check"))
    m.config.check = analysis::CheckConfig::parse(flags.str("check"));
  return true;
}

/// Every flag that feeds the fault plan; with --replay the plan comes
/// from the recording, so passing any of these is a contradiction.
constexpr const char* kFaultFlags[] = {
    "fault-drop-rate",   "fault-dup-rate", "fault-corrupt-rate",
    "fault-jitter-max",  "fault-seed",     "fault-timeout",
    "fault-max-retries", "fault-outage",   "fault-reliability",
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("app", "sort",
               "workload: " + workloads::Registry::instance().name_list())
      .define("list-apps", "false",
              "print every registered workload with its description and "
              "default sizes, then exit")
      .define("procs", "16", "processor count (power of two except jacobi)")
      .define("size-per-proc", "1024", "elements/points/cells per PE")
      .define("threads", "4", "fine-grain threads per PE")
      .define("iterations", "8", "jacobi only: sweeps")
      .define("network", "fast", "fast | detailed")
      .define("read-service", "bypass", "bypass | em4")
      .define("barrier", "central", "central | tree")
      .define("priority-replies", "false", "replies via the high FIFO")
      .define("block-reads", "false", "sort only: block-read variant")
      .define("local-phase", "true", "fft only: include the local iterations")
      .define("seed", "1", "workload seed")
      .define("switch-save", "4", "register-save cycles per suspension")
      .define("dma-service", "16", "by-pass DMA service latency, cycles")
      .define("dma-interval", "32", "by-pass DMA occupancy per request")
      .define("poll-interval", "24", "barrier re-check period, cycles")
      .define("engine", "seq",
              "seq | par: par shards PEs across host threads under "
              "conservative time windows; results, digests and snapshots "
              "are byte-identical to seq")
      .define("shards", "0",
              "par engine: PE shards / host threads (0 = one per "
              "hardware core, capped at the PE count)")
      .define("report", "text", "text | csv")
      .define("verify", "true", "check the application result")
      .define("fault-drop-rate", "0", "P(drop) per tracked fabric packet")
      .define("fault-dup-rate", "0", "P(duplicate) per tracked fabric packet")
      .define("fault-corrupt-rate", "0", "P(bit corruption) per tracked fabric packet")
      .define("fault-jitter-max", "0", "max extra per-packet latency, cycles")
      .define("fault-seed", "1026839", "fault plan RNG seed")
      .define("fault-timeout", "4096", "retransmit timeout, cycles")
      .define("fault-max-retries", "10", "retransmits allowed per request")
      .define("fault-outage", "", "PE fail-stop windows: pe:begin:end[,...]")
      .define("fault-reliability", "true",
              "seq/ACK/retransmit protocol (off = lossy faults may hang; "
              "pair with --watchdog)")
      .define("watchdog", "0",
              "stop + diagnose after N cycles without progress (0 = off); "
              "exit code 4 when it fires")
      .define("check", "", "checkers: memcheck,race,deadlock,lint | all | none")
      .define("verify-static", "warn",
              "static CFG/dataflow verification of ISA programs before "
              "the run: off | warn | error (error exits 6 on findings)")
      .define("checkpoint-every", "0",
              "write a full snapshot every N cycles (0 = off); needs "
              "--checkpoint-dir")
      .define("checkpoint-dir", "",
              "directory for checkpoints and automatic crash dumps "
              "(exit 3/4 runs leave crash-<app>.emxsnap here)")
      .define("resume", "",
              "checkpoint file: rebuild the run, fast-forward to its "
              "cycle, byte-verify the state, then continue")
      .define("record", "", "write a record-replay digest trace here")
      .define("replay", "",
              "recording file: re-run its manifest and diff state digests; "
              "first divergence exits 5")
      .define("digest-every", "65536",
              "record-replay digest frame interval, cycles")
      .define("result-json", "",
              "write a one-line machine-readable result summary here "
              "(atomic publish; deterministic across resume — the sweep "
              "supervisor's cache currency)")
      .define("progress-every", "0",
              "append a CRC-framed progress record (cycle, live threads, "
              "checkpoint count) every N cycles (0 = off); needs "
              "--progress-file. Pure observer: cycles are byte-identical")
      .define("progress-file", "",
              "side file for --progress-every records (what emx_serve's "
              "watch streams); truncated at run start")
      .define("checkpoint-on-signal", "false",
              "write a checkpoint at the next pause after SIGUSR1 (needs "
              "--checkpoint-dir); how emx_serve preempts without losing "
              "completed cycles");
  flags.parse(argc, argv);

  if (flags.boolean("list-apps")) {
    for (const auto& spec : workloads::Registry::instance().specs()) {
      std::printf("%-12s %s\n%-12s defaults: size-per-proc=%llu threads=%u\n",
                  spec.name.c_str(), spec.description.c_str(), "",
                  static_cast<unsigned long long>(spec.default_size_per_proc),
                  spec.default_threads);
    }
    return 0;
  }

  const std::string resume_path = flags.str("resume");
  const std::string replay_path = flags.str("replay");
  const std::string record_path = flags.str("record");

  // Contradictory flag combinations are exit 2 before any work happens.
  if (!replay_path.empty() && !record_path.empty()) {
    std::fprintf(stderr,
                 "emx_run: --replay and --record are mutually exclusive "
                 "(a replay is checked against an existing recording)\n");
    return 2;
  }
  if (!replay_path.empty() && !resume_path.empty()) {
    std::fprintf(stderr,
                 "emx_run: --replay and --resume are mutually exclusive "
                 "(a replay must re-execute from cycle 0)\n");
    return 2;
  }
  if (!replay_path.empty()) {
    for (const char* f : kFaultFlags) {
      if (flags.explicitly_set(f)) {
        std::fprintf(stderr,
                     "emx_run: --replay takes its fault plan from the "
                     "recording; --%s contradicts it\n",
                     f);
        return 2;
      }
    }
  }
  if (flags.str("engine") != "seq" && flags.str("engine") != "par") {
    std::fprintf(stderr, "emx_run: --engine=%s is not an engine (want seq | par)\n",
                 flags.str("engine").c_str());
    return 2;
  }
  if (flags.integer("shards") < 0) {
    std::fprintf(stderr, "emx_run: --shards must be >= 0\n");
    return 2;
  }
  if (flags.integer("checkpoint-every") < 0) {
    std::fprintf(stderr, "emx_run: --checkpoint-every must be >= 0\n");
    return 2;
  }
  if (flags.integer("checkpoint-every") > 0 && flags.str("checkpoint-dir").empty()) {
    std::fprintf(stderr, "emx_run: --checkpoint-every needs --checkpoint-dir\n");
    return 2;
  }
  if (flags.integer("digest-every") < 1) {
    std::fprintf(stderr, "emx_run: --digest-every must be >= 1\n");
    return 2;
  }
  if (flags.integer("progress-every") < 0) {
    std::fprintf(stderr, "emx_run: --progress-every must be >= 0\n");
    return 2;
  }
  if (flags.integer("progress-every") > 0 && flags.str("progress-file").empty()) {
    std::fprintf(stderr, "emx_run: --progress-every needs --progress-file\n");
    return 2;
  }
  if (flags.boolean("checkpoint-on-signal") &&
      flags.str("checkpoint-dir").empty()) {
    std::fprintf(stderr,
                 "emx_run: --checkpoint-on-signal needs --checkpoint-dir\n");
    return 2;
  }

  snapshot::RunManifest manifest;
  if (!resume_path.empty() || !replay_path.empty()) {
    const std::string& path = resume_path.empty() ? replay_path : resume_path;
    const auto kind = resume_path.empty() ? snapshot::FileKind::kRecording
                                          : snapshot::FileKind::kCheckpoint;
    Cycle at = 0;
    const std::string err = snapshot::load_manifest(path, kind, manifest, at);
    if (!err.empty()) {
      std::fprintf(stderr, "emx_run: %s\n", err.c_str());
      return 2;
    }
    // Defaults adopt the file's manifest; explicit flags must agree.
    snapshot::RunManifest merged = manifest;
    if (!apply_flags(flags, merged, /*only_explicit=*/true)) return 2;
    const std::string conflicts = manifest.diff(merged);
    if (!conflicts.empty()) {
      std::fprintf(stderr,
                   "emx_run: explicit flags contradict %s "
                   "(file vs flags):\n%s",
                   path.c_str(), conflicts.c_str());
      return 2;
    }
  } else {
    if (!apply_flags(flags, manifest, /*only_explicit=*/false)) return 2;
    // Fresh runs left at the size defaults adopt the workload's own
    // registered default sizes (resume/replay adopt the file's manifest
    // instead, so this never rewrites a snapshot's recipe).
    const workloads::Spec* spec =
        workloads::Registry::instance().find(manifest.app);
    if (spec != nullptr) {
      if (!flags.explicitly_set("size-per-proc"))
        manifest.size_per_proc = spec->default_size_per_proc;
      if (!flags.explicitly_set("threads"))
        manifest.threads = spec->default_threads;
    }
  }
  if (!validate_fault_flags(manifest.config)) return 2;
  if (workloads::Registry::instance().find(manifest.app) == nullptr) {
    // Same diagnostic text the snapshot runner emits for a resumed
    // manifest naming an unknown app — one message, both paths, exit 2.
    std::fprintf(stderr, "emx_run: %s\n",
                 workloads::unknown_app_message(manifest.app).c_str());
    return 2;
  }

  snapshot::RunOptions opts;
  if (!verify::parse_gate_mode(flags.str("verify-static"), opts.verify_static)) {
    std::fprintf(stderr,
                 "emx_run: --verify-static=%s is not a mode "
                 "(want off | warn | error)\n",
                 flags.str("verify-static").c_str());
    return 2;
  }
  opts.manifest = manifest;
  // Execution knobs only — never merged into the manifest, so a resume
  // or replay may pick a different engine than the capturing run.
  opts.engine.kind = flags.str("engine") == "par"
                         ? sim::EngineSpec::Kind::kParallel
                         : sim::EngineSpec::Kind::kSequential;
  opts.engine.shards = static_cast<std::uint32_t>(flags.integer("shards"));
  opts.verify_result = flags.boolean("verify");
  opts.checkpoint_every = static_cast<Cycle>(flags.integer("checkpoint-every"));
  opts.checkpoint_dir = flags.str("checkpoint-dir");
  opts.resume_path = resume_path;
  opts.record_path = record_path;
  opts.replay_path = replay_path;
  opts.digest_every = static_cast<Cycle>(flags.integer("digest-every"));
  opts.result_json_path = flags.str("result-json");
  opts.progress_every = static_cast<Cycle>(flags.integer("progress-every"));
  opts.progress_path = flags.str("progress-file");
  opts.checkpoint_signal = flags.boolean("checkpoint-on-signal");

  const bool csv = flags.str("report") == "csv";
  const snapshot::RunResult result = snapshot::run(opts);
  if (!result.report_valid) {
    // Early failure (bad input, corrupt file, resume/replay divergence):
    // there is no report to print, only the cause.
    std::fprintf(stderr, "emx_run: %s\n", result.error.c_str());
    return result.exit_code;
  }

  const std::uint64_t n = manifest.size_per_proc * manifest.config.proc_count;
  if (!csv) {
    std::printf("%s\napp=%s n=%s h=%u — %s\n", manifest.config.summary().c_str(),
                manifest.app.c_str(), size_label(n).c_str(), manifest.threads,
                result.result_checked
                    ? (result.result_ok ? "VERIFIED" : "WRONG RESULT")
                    : "not verified");
  }
  print_report(result.report, csv);
  if (!result.report.app_metrics.empty() && !csv)
    std::printf("app metrics:\n%s",
                result.report.app_metrics_text().c_str());
  if (result.report.fault_enabled && !csv)
    std::fputs(result.report.fault.summary_text().c_str(), stdout);
  if (result.report.check_enabled && !csv)
    std::fputs(result.report.check.summary_text().c_str(), stdout);
  if (!result.checkpoints_written.empty() && !csv)
    std::printf("checkpoints: %zu written under %s\n",
                result.checkpoints_written.size(), opts.checkpoint_dir.c_str());
  if (!result.crash_dump_path.empty())
    std::fprintf(stderr, "emx_run: crash dump written to %s\n",
                 result.crash_dump_path.c_str());
  if (result.report.watchdog_fired) {
    // The run stalled and the watchdog cut it short: the stall diagnosis
    // outranks result/checker verdicts (there is no result to judge).
    std::fputs(result.report.watchdog_diagnosis.c_str(), stderr);
  }
  // Late-stage errors (e.g. the result-json publish failed after the run
  // completed) still carry a cause worth printing beside the report.
  if (!result.error.empty())
    std::fprintf(stderr, "emx_run: %s\n", result.error.c_str());
  return result.exit_code;
}
