// emx_run — the one-stop command-line driver for the EM-X simulator.
//
//   $ emx_run --app=sort --procs=16 --size-per-proc=1024 --threads=4
//   $ emx_run --app=fft --procs=64 --threads=2 --network=detailed
//   $ emx_run --app=fft-cyclic --report=csv
//   $ emx_run --app=jacobi --iterations=16 --barrier=tree
//
// Exposes every MachineConfig knob, runs the chosen application, verifies
// the result, and prints the full measurement report (text or CSV).
//
// Exit codes:
//   0  run completed, result verified (or --verify=false)
//   1  run completed but the application result is wrong
//   2  bad command line (unknown flag, out-of-range fault rate,
//      malformed --fault-outage spec, ...)
//   3  result fine but an armed checker (--check) reported findings
//   4  the progress watchdog (--watchdog) stopped a stalled run;
//      the stall diagnosis is printed to stderr
#include <cstdio>
#include <cstdlib>

#include "emx.hpp"
#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace emx;

namespace {

void print_report(const MachineReport& report, bool csv) {
  if (!csv) {
    std::printf("%s\n", report.summary_text().c_str());
    const auto s = report.shares();
    std::printf(
        "breakdown: compute %.2f%%  overhead %.2f%%  comm %.2f%%  switch %.2f%%\n",
        s.compute, s.overhead, s.comm, s.switching);
  }
  Table table({"pe", "compute", "overhead", "switching", "read_service",
               "comm", "reads", "rr_switch", "ts_switch", "is_switch"});
  for (std::size_t p = 0; p < report.procs.size(); ++p) {
    const auto& pr = report.procs[p];
    table.add_row({std::to_string(p), Table::cell(pr.compute),
                   Table::cell(pr.overhead), Table::cell(pr.switching),
                   Table::cell(pr.read_service), Table::cell(pr.comm),
                   Table::cell(pr.reads_issued),
                   Table::cell(pr.switches.remote_read),
                   Table::cell(pr.switches.thread_sync),
                   Table::cell(pr.switches.iter_sync)});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_text().c_str(), stdout);
}

/// Parses "pe:begin:end[,pe:begin:end...]" into outage windows. Returns
/// false (after printing a clear error) on any malformed token.
bool parse_outages(const std::string& spec,
                   std::vector<fault::OutageWindow>& out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    unsigned long long pe = 0, begin = 0, end = 0;
    char trailing = 0;
    if (std::sscanf(token.c_str(), "%llu:%llu:%llu%c", &pe, &begin, &end,
                    &trailing) != 3) {
      std::fprintf(stderr,
                   "emx_run: malformed --fault-outage token '%s' "
                   "(want pe:begin:end)\n",
                   token.c_str());
      return false;
    }
    if (end <= begin) {
      std::fprintf(stderr,
                   "emx_run: --fault-outage window '%s' is empty "
                   "(end must be > begin)\n",
                   token.c_str());
      return false;
    }
    out.push_back(fault::OutageWindow{static_cast<ProcId>(pe),
                                      static_cast<Cycle>(begin),
                                      static_cast<Cycle>(end)});
    pos = comma + 1;
  }
  return true;
}

/// Range-checks every --fault-* value; prints a clear error and returns
/// false instead of tripping the library's EMX_CHECK abort.
bool validate_fault_flags(const MachineConfig& cfg) {
  const auto bad_rate = [](const char* name, double v) {
    std::fprintf(stderr, "emx_run: --%s=%g out of range (want 0..1)\n", name, v);
  };
  bool ok = true;
  if (cfg.fault.drop_rate < 0 || cfg.fault.drop_rate > 1) {
    bad_rate("fault-drop-rate", cfg.fault.drop_rate);
    ok = false;
  }
  if (cfg.fault.duplicate_rate < 0 || cfg.fault.duplicate_rate > 1) {
    bad_rate("fault-dup-rate", cfg.fault.duplicate_rate);
    ok = false;
  }
  if (cfg.fault.corrupt_rate < 0 || cfg.fault.corrupt_rate > 1) {
    bad_rate("fault-corrupt-rate", cfg.fault.corrupt_rate);
    ok = false;
  }
  if (ok && cfg.fault.drop_rate + cfg.fault.duplicate_rate +
                cfg.fault.corrupt_rate > 1.0) {
    std::fprintf(stderr,
                 "emx_run: fault rates sum to %g; drop+dup+corrupt must "
                 "not exceed 1\n",
                 cfg.fault.drop_rate + cfg.fault.duplicate_rate +
                     cfg.fault.corrupt_rate);
    ok = false;
  }
  for (const auto& w : cfg.fault.outages) {
    if (w.pe >= cfg.proc_count) {
      std::fprintf(stderr,
                   "emx_run: --fault-outage names pe %u but the machine "
                   "has %u PEs\n",
                   w.pe, cfg.proc_count);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("app", "sort", "workload: sort | fft | fft-cyclic | jacobi")
      .define("procs", "16", "processor count (power of two except jacobi)")
      .define("size-per-proc", "1024", "elements/points/cells per PE")
      .define("threads", "4", "fine-grain threads per PE")
      .define("iterations", "8", "jacobi only: sweeps")
      .define("network", "fast", "fast | detailed")
      .define("read-service", "bypass", "bypass | em4")
      .define("barrier", "central", "central | tree")
      .define("priority-replies", "false", "replies via the high FIFO")
      .define("block-reads", "false", "sort only: block-read variant")
      .define("local-phase", "true", "fft only: include the local iterations")
      .define("seed", "1", "workload seed")
      .define("switch-save", "4", "register-save cycles per suspension")
      .define("dma-service", "16", "by-pass DMA service latency, cycles")
      .define("dma-interval", "32", "by-pass DMA occupancy per request")
      .define("poll-interval", "24", "barrier re-check period, cycles")
      .define("report", "text", "text | csv")
      .define("verify", "true", "check the application result")
      .define("fault-drop-rate", "0", "P(drop) per tracked fabric packet")
      .define("fault-dup-rate", "0", "P(duplicate) per tracked fabric packet")
      .define("fault-corrupt-rate", "0", "P(bit corruption) per tracked fabric packet")
      .define("fault-jitter-max", "0", "max extra per-packet latency, cycles")
      .define("fault-seed", "1026839", "fault plan RNG seed")
      .define("fault-timeout", "4096", "retransmit timeout, cycles")
      .define("fault-max-retries", "10", "retransmits allowed per request")
      .define("fault-outage", "", "PE fail-stop windows: pe:begin:end[,...]")
      .define("fault-reliability", "true",
              "seq/ACK/retransmit protocol (off = lossy faults may hang; "
              "pair with --watchdog)")
      .define("watchdog", "0",
              "stop + diagnose after N cycles without progress (0 = off); "
              "exit code 4 when it fires")
      .define("check", "", "checkers: memcheck,race,deadlock,lint | all | none");
  flags.parse(argc, argv);

  MachineConfig cfg;
  cfg.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  cfg.network = flags.str("network") == "detailed" ? NetworkModel::kDetailed
                                                   : NetworkModel::kFast;
  cfg.read_service = flags.str("read-service") == "em4"
                         ? ReadServiceMode::kExuThread
                         : ReadServiceMode::kBypassDma;
  cfg.barrier = flags.str("barrier") == "tree" ? BarrierTopology::kTree
                                               : BarrierTopology::kCentral;
  cfg.priority_replies = flags.boolean("priority-replies");
  cfg.switch_save_cycles = static_cast<Cycle>(flags.integer("switch-save"));
  cfg.dma_service_cycles = static_cast<Cycle>(flags.integer("dma-service"));
  cfg.dma_interval_cycles = static_cast<Cycle>(flags.integer("dma-interval"));
  cfg.barrier_poll_interval = static_cast<Cycle>(flags.integer("poll-interval"));
  cfg.fault.drop_rate = flags.real("fault-drop-rate");
  cfg.fault.duplicate_rate = flags.real("fault-dup-rate");
  cfg.fault.corrupt_rate = flags.real("fault-corrupt-rate");
  if (flags.integer("fault-jitter-max") < 0) {
    std::fprintf(stderr, "emx_run: --fault-jitter-max must be >= 0\n");
    return 2;
  }
  cfg.fault.jitter_max_cycles = static_cast<Cycle>(flags.integer("fault-jitter-max"));
  cfg.fault.seed = static_cast<std::uint64_t>(flags.integer("fault-seed"));
  if (flags.integer("fault-timeout") < 1) {
    std::fprintf(stderr, "emx_run: --fault-timeout must be >= 1 cycle\n");
    return 2;
  }
  cfg.fault.timeout_cycles = static_cast<Cycle>(flags.integer("fault-timeout"));
  if (flags.integer("fault-max-retries") < 1) {
    std::fprintf(stderr, "emx_run: --fault-max-retries must be >= 1\n");
    return 2;
  }
  cfg.fault.max_retries =
      static_cast<std::uint32_t>(flags.integer("fault-max-retries"));
  if (!parse_outages(flags.str("fault-outage"), cfg.fault.outages)) return 2;
  cfg.fault.reliability = flags.boolean("fault-reliability");
  if (flags.integer("watchdog") < 0) {
    std::fprintf(stderr, "emx_run: --watchdog must be >= 0\n");
    return 2;
  }
  cfg.watchdog_cycles = static_cast<Cycle>(flags.integer("watchdog"));
  if (!validate_fault_flags(cfg)) return 2;
  cfg.check = analysis::CheckConfig::parse(flags.str("check"));

  const std::uint64_t n =
      cfg.proc_count * static_cast<std::uint64_t>(flags.integer("size-per-proc"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed"));
  const bool csv = flags.str("report") == "csv";
  const bool verify_flag = flags.boolean("verify");
  const std::string app_name = flags.str("app");

  Machine machine(cfg);
  bool ok = true;
  // A watchdog-stopped run never quiesced; its result is undefined, so
  // verification is skipped (the run exits 4 below regardless).
  const auto verify = [&] { return verify_flag && !machine.watchdog_fired(); };
  if (app_name == "sort") {
    apps::BitonicSortApp app(
        machine, apps::BitonicParams{.n = n,
                                     .threads = h,
                                     .seed = seed,
                                     .use_block_reads = flags.boolean("block-reads")});
    app.setup();
    machine.run();
    if (verify()) ok = app.verify();
  } else if (app_name == "fft") {
    apps::FftApp app(machine,
                     apps::FftParams{.n = n,
                                     .threads = h,
                                     .seed = seed,
                                     .include_local_phase = flags.boolean("local-phase")});
    app.setup();
    machine.run();
    if (verify() && flags.boolean("local-phase")) ok = app.verify_error() < 1e-5;
  } else if (app_name == "fft-cyclic") {
    apps::CyclicFftApp app(machine,
                           apps::CyclicFftParams{.n = n, .threads = h, .seed = seed});
    app.setup();
    machine.run();
    if (verify()) ok = app.verify_error() < 1e-5;
  } else if (app_name == "jacobi") {
    apps::JacobiApp app(
        machine,
        apps::JacobiParams{.n = n,
                           .threads = h,
                           .iterations = static_cast<std::uint32_t>(
                               flags.integer("iterations")),
                           .seed = seed});
    app.setup();
    machine.run();
    if (verify()) ok = app.verify_error() < 1e-6;
  } else {
    std::fprintf(stderr, "unknown --app: %s\n%s", app_name.c_str(),
                 flags.help_text(argv[0]).c_str());
    return 2;
  }

  if (!csv) {
    std::printf("%s\napp=%s n=%s h=%u — %s\n", cfg.summary().c_str(),
                app_name.c_str(), size_label(n).c_str(), h,
                verify() ? (ok ? "VERIFIED" : "WRONG RESULT") : "not verified");
  }
  const MachineReport report = machine.report();
  print_report(report, csv);
  if (report.fault_enabled && !csv)
    std::fputs(report.fault.summary_text().c_str(), stdout);
  if (report.check_enabled && !csv)
    std::fputs(report.check.summary_text().c_str(), stdout);
  if (report.watchdog_fired) {
    // The run stalled and the watchdog cut it short: the stall diagnosis
    // outranks result/checker verdicts (there is no result to judge).
    std::fputs(report.watchdog_diagnosis.c_str(), stderr);
    return 4;
  }
  if (!ok) return 1;
  // Checker diagnostics get their own exit code so scripts can tell
  // "wrong result" from "result fine but the program has a bug".
  if (report.check_enabled && !report.check.clean()) return 3;
  return 0;
}
