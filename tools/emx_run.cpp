// emx_run — the one-stop command-line driver for the EM-X simulator.
//
//   $ emx_run --app=sort --procs=16 --size-per-proc=1024 --threads=4
//   $ emx_run --app=fft --procs=64 --threads=2 --network=detailed
//   $ emx_run --app=fft-cyclic --report=csv
//   $ emx_run --app=jacobi --iterations=16 --barrier=tree
//
// Exposes every MachineConfig knob, runs the chosen application, verifies
// the result, and prints the full measurement report (text or CSV).
#include <cstdio>

#include "emx.hpp"
#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace emx;

namespace {

void print_report(const MachineReport& report, bool csv) {
  if (!csv) {
    std::printf("%s\n", report.summary_text().c_str());
    const auto s = report.shares();
    std::printf(
        "breakdown: compute %.2f%%  overhead %.2f%%  comm %.2f%%  switch %.2f%%\n",
        s.compute, s.overhead, s.comm, s.switching);
  }
  Table table({"pe", "compute", "overhead", "switching", "read_service",
               "comm", "reads", "rr_switch", "ts_switch", "is_switch"});
  for (std::size_t p = 0; p < report.procs.size(); ++p) {
    const auto& pr = report.procs[p];
    table.add_row({std::to_string(p), Table::cell(pr.compute),
                   Table::cell(pr.overhead), Table::cell(pr.switching),
                   Table::cell(pr.read_service), Table::cell(pr.comm),
                   Table::cell(pr.reads_issued),
                   Table::cell(pr.switches.remote_read),
                   Table::cell(pr.switches.thread_sync),
                   Table::cell(pr.switches.iter_sync)});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_text().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("app", "sort", "workload: sort | fft | fft-cyclic | jacobi")
      .define("procs", "16", "processor count (power of two except jacobi)")
      .define("size-per-proc", "1024", "elements/points/cells per PE")
      .define("threads", "4", "fine-grain threads per PE")
      .define("iterations", "8", "jacobi only: sweeps")
      .define("network", "fast", "fast | detailed")
      .define("read-service", "bypass", "bypass | em4")
      .define("barrier", "central", "central | tree")
      .define("priority-replies", "false", "replies via the high FIFO")
      .define("block-reads", "false", "sort only: block-read variant")
      .define("local-phase", "true", "fft only: include the local iterations")
      .define("seed", "1", "workload seed")
      .define("switch-save", "4", "register-save cycles per suspension")
      .define("dma-service", "16", "by-pass DMA service latency, cycles")
      .define("dma-interval", "32", "by-pass DMA occupancy per request")
      .define("poll-interval", "24", "barrier re-check period, cycles")
      .define("report", "text", "text | csv")
      .define("verify", "true", "check the application result")
      .define("fault-drop-rate", "0", "P(drop) per tracked read packet")
      .define("fault-dup-rate", "0", "P(duplicate) per tracked read packet")
      .define("fault-corrupt-rate", "0", "P(bit corruption) per tracked read packet")
      .define("fault-jitter-max", "0", "max extra per-packet latency, cycles")
      .define("fault-seed", "1026839", "fault plan RNG seed")
      .define("fault-timeout", "4096", "read retransmit timeout, cycles")
      .define("fault-max-retries", "10", "retransmits allowed per read")
      .define("check", "", "checkers: memcheck,race,deadlock,lint | all | none");
  flags.parse(argc, argv);

  MachineConfig cfg;
  cfg.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  cfg.network = flags.str("network") == "detailed" ? NetworkModel::kDetailed
                                                   : NetworkModel::kFast;
  cfg.read_service = flags.str("read-service") == "em4"
                         ? ReadServiceMode::kExuThread
                         : ReadServiceMode::kBypassDma;
  cfg.barrier = flags.str("barrier") == "tree" ? BarrierTopology::kTree
                                               : BarrierTopology::kCentral;
  cfg.priority_replies = flags.boolean("priority-replies");
  cfg.switch_save_cycles = static_cast<Cycle>(flags.integer("switch-save"));
  cfg.dma_service_cycles = static_cast<Cycle>(flags.integer("dma-service"));
  cfg.dma_interval_cycles = static_cast<Cycle>(flags.integer("dma-interval"));
  cfg.barrier_poll_interval = static_cast<Cycle>(flags.integer("poll-interval"));
  cfg.fault.drop_rate = flags.real("fault-drop-rate");
  cfg.fault.duplicate_rate = flags.real("fault-dup-rate");
  cfg.fault.corrupt_rate = flags.real("fault-corrupt-rate");
  cfg.fault.jitter_max_cycles = static_cast<Cycle>(flags.integer("fault-jitter-max"));
  cfg.fault.seed = static_cast<std::uint64_t>(flags.integer("fault-seed"));
  cfg.fault.timeout_cycles = static_cast<Cycle>(flags.integer("fault-timeout"));
  cfg.fault.max_retries =
      static_cast<std::uint32_t>(flags.integer("fault-max-retries"));
  cfg.check = analysis::CheckConfig::parse(flags.str("check"));

  const std::uint64_t n =
      cfg.proc_count * static_cast<std::uint64_t>(flags.integer("size-per-proc"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed"));
  const bool csv = flags.str("report") == "csv";
  const bool verify = flags.boolean("verify");
  const std::string app_name = flags.str("app");

  Machine machine(cfg);
  bool ok = true;
  if (app_name == "sort") {
    apps::BitonicSortApp app(
        machine, apps::BitonicParams{.n = n,
                                     .threads = h,
                                     .seed = seed,
                                     .use_block_reads = flags.boolean("block-reads")});
    app.setup();
    machine.run();
    if (verify) ok = app.verify();
  } else if (app_name == "fft") {
    apps::FftApp app(machine,
                     apps::FftParams{.n = n,
                                     .threads = h,
                                     .seed = seed,
                                     .include_local_phase = flags.boolean("local-phase")});
    app.setup();
    machine.run();
    if (verify && flags.boolean("local-phase")) ok = app.verify_error() < 1e-5;
  } else if (app_name == "fft-cyclic") {
    apps::CyclicFftApp app(machine,
                           apps::CyclicFftParams{.n = n, .threads = h, .seed = seed});
    app.setup();
    machine.run();
    if (verify) ok = app.verify_error() < 1e-5;
  } else if (app_name == "jacobi") {
    apps::JacobiApp app(
        machine,
        apps::JacobiParams{.n = n,
                           .threads = h,
                           .iterations = static_cast<std::uint32_t>(
                               flags.integer("iterations")),
                           .seed = seed});
    app.setup();
    machine.run();
    if (verify) ok = app.verify_error() < 1e-6;
  } else {
    std::fprintf(stderr, "unknown --app: %s\n%s", app_name.c_str(),
                 flags.help_text(argv[0]).c_str());
    return 2;
  }

  if (!csv) {
    std::printf("%s\napp=%s n=%s h=%u — %s\n", cfg.summary().c_str(),
                app_name.c_str(), size_label(n).c_str(), h,
                verify ? (ok ? "VERIFIED" : "WRONG RESULT") : "not verified");
  }
  const MachineReport report = machine.report();
  print_report(report, csv);
  if (report.fault_enabled && !csv)
    std::fputs(report.fault.summary_text().c_str(), stdout);
  if (report.check_enabled && !csv)
    std::fputs(report.check.summary_text().c_str(), stdout);
  if (!ok) return 1;
  // Checker diagnostics get their own exit code so scripts can tell
  // "wrong result" from "result fine but the program has a bug".
  if (report.check_enabled && !report.check.clean()) return 3;
  return 0;
}
