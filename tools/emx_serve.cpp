// emx_serve — multi-tenant simulation-job daemon over a Unix socket.
//
//   $ emx_serve --socket=/tmp/emx.sock --out=out/serve --jobs=2 &
//   $ emx_client submit --socket=/tmp/emx.sock --app=sort --priority=7
//
// Accepts newline-delimited JSON requests (submit/status/list/cancel/
// watch/drain — docs/SERVE.md) and schedules them onto a bounded pool
// of emx_run workers with per-tenant fair share. Higher-priority
// submissions preempt running lower-priority work by requesting a
// checkpoint (SIGUSR1), then SIGKILLing the worker once the checkpoint
// lands; victims resume from it with no retry budget spent. Identical
// run recipes deduplicate against in-flight work and the result cache.
// Every transition is journaled, so a SIGKILLed daemon restarted over
// the same --out directory converges — queued work stays queued, done
// work stays done, running work resumes from its newest checkpoint.
//
// Exit codes: 0 clean exit (drain honored or SIGTERM/SIGINT); 2 setup
// or journal-write failure (bad socket path, unwritable --out, damaged
// journal).
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "serve/daemon.hpp"

int main(int argc, char** argv) {
  emx::CliFlags flags;
  flags
      .define("socket", "", "Unix-domain socket path to listen on (required)")
      .define("out", "out/serve",
              "state directory (journal, cache, per-job scratch); reuse it "
              "to restart the daemon with its jobs intact")
      .define("emx-run", "",
              "path to the emx_run worker binary (default: next to this "
              "binary)")
      .define("jobs", "2", "max concurrent worker processes")
      .define("retries", "3",
              "retry budget per execution after the first try (preemptions "
              "are free)")
      .define("max-per-tenant", "0",
              "max running executions per tenant; 0 = no cap")
      .define("timeout-s", "0",
              "per-attempt wall-clock timeout in seconds; 0 = none")
      .define("backoff-ms", "250",
              "first retry delay; doubles per attempt up to 8000 ms")
      .define("preempt-grace-ms", "1000",
              "how long a preempted worker gets to write its checkpoint "
              "before the SIGKILL")
      .define("checkpoint-every", "100000",
              "worker checkpoint period in cycles; 0 leaves only "
              "on-demand (preemption) checkpoints")
      .define("progress-every", "50000",
              "worker progress-record period in cycles (feeds `watch`); "
              "0 disarms")
      .define("cache-max-bytes", "0",
              "result-cache size cap with LRU eviction; entries live jobs "
              "reference are pinned and never evicted. 0 = no cap")
      .define("engine", "seq",
              "worker execution engine (seq | par); job results are "
              "byte-identical either way, so the result cache stays valid")
      .define("shards", "0",
              "par engine: PE shards / host threads per worker (0 = one "
              "per hardware core)")
      .define("quiet", "false", "suppress per-job progress on stderr");
  flags.parse(argc, argv);

  emx::serve::DaemonOptions opts;
  opts.socket_path = flags.str("socket");
  opts.out_dir = flags.str("out");
  opts.emx_run = flags.str("emx-run");
  if (opts.emx_run.empty()) {
    std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    opts.emx_run =
        (slash == std::string::npos ? std::string(".")
                                    : self.substr(0, slash)) +
        "/emx_run";
  }
  opts.parallel = static_cast<unsigned>(flags.integer("jobs"));
  opts.max_retries = static_cast<unsigned>(flags.integer("retries"));
  opts.max_per_tenant =
      static_cast<unsigned>(flags.integer("max-per-tenant"));
  opts.timeout_ms = flags.integer("timeout-s") * 1000;
  opts.backoff_ms = flags.integer("backoff-ms");
  opts.preempt_grace_ms = flags.integer("preempt-grace-ms");
  opts.checkpoint_every =
      static_cast<std::uint64_t>(flags.integer("checkpoint-every"));
  opts.progress_every =
      static_cast<std::uint64_t>(flags.integer("progress-every"));
  opts.cache_max_bytes =
      static_cast<std::uint64_t>(flags.integer("cache-max-bytes"));
  opts.quiet = flags.boolean("quiet");
  opts.engine = flags.str("engine");
  opts.shards = static_cast<std::uint32_t>(flags.integer("shards"));
  if (opts.engine != "seq" && opts.engine != "par") {
    std::fprintf(stderr, "emx_serve: --engine=%s is not an engine (want seq | par)\n",
                 opts.engine.c_str());
    return 2;
  }
  if (flags.integer("shards") < 0) {
    std::fprintf(stderr, "emx_serve: --shards must be >= 0\n");
    return 2;
  }
  if (flags.integer("jobs") <= 0 || flags.integer("retries") < 0 ||
      flags.integer("max-per-tenant") < 0 || flags.integer("timeout-s") < 0 ||
      flags.integer("backoff-ms") < 0 ||
      flags.integer("preempt-grace-ms") < 0 ||
      flags.integer("checkpoint-every") < 0 ||
      flags.integer("progress-every") < 0 ||
      flags.integer("cache-max-bytes") < 0) {
    std::fprintf(stderr,
                 "emx_serve: --jobs must be >= 1 and every other numeric "
                 "flag must be >= 0\n");
    return 2;
  }

  std::string err;
  const int code = emx::serve::run_daemon(opts, err);
  if (code != 0) std::fprintf(stderr, "emx_serve: %s\n", err.c_str());
  return code;
}
