// Simulator microbenchmarks (google-benchmark): event queue throughput,
// per-packet cost of the detailed vs fast network models, and end-to-end
// simulated-cycles-per-wall-second on a small sorting workload. These
// quantify the cost of the substrate itself, not EM-X behaviour.
#include <benchmark/benchmark.h>

#include "apps/bitonic.hpp"
#include "core/machine.hpp"
#include "network/fast_network.hpp"
#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

using namespace emx;

namespace {

void noop_delivery(void*, const net::Packet&) {}

template <typename Net>
void bench_network(benchmark::State& state) {
  const auto procs = static_cast<std::uint32_t>(state.range(0));
  sim::SimContext sim;
  Net network(sim, procs);
  network.set_delivery(&noop_delivery, nullptr);
  std::uint64_t injected = 0;
  for (auto _ : state) {
    net::Packet p;
    p.kind = net::PacketKind::kRemoteWrite;
    p.src = static_cast<ProcId>(injected % procs);
    p.dst = static_cast<ProcId>((injected * 7 + 3) % procs);
    network.inject(p);
    ++injected;
    if (injected % 1024 == 0) sim.run_until_idle();
  }
  sim.run_until_idle();
  state.SetItemsProcessed(static_cast<std::int64_t>(injected));
}

void BM_OmegaDetailed(benchmark::State& state) {
  bench_network<net::OmegaNetwork>(state);
}
void BM_OmegaFast(benchmark::State& state) {
  bench_network<net::FastNetwork>(state);
}
BENCHMARK(BM_OmegaDetailed)->Arg(16)->Arg(64);
BENCHMARK(BM_OmegaFast)->Arg(16)->Arg(64);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t tick = 0;
  static auto nop = [](void*, std::uint64_t, std::uint64_t) {};
  for (auto _ : state) {
    q.push(tick + (tick * 2654435761u) % 512, nop, nullptr, 0, 0);
    ++tick;
    if (q.size() > 4096) {
      while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tick));
}
BENCHMARK(BM_EventQueue);

void BM_SimulatedSort(benchmark::State& state) {
  // Whole-machine throughput: simulated cycles per wall second.
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.proc_count = 16;
    Machine m(cfg);
    apps::BitonicSortApp app(m, apps::BitonicParams{.n = 16 * 256, .threads = threads});
    app.setup();
    m.run();
    sim_cycles += m.end_cycle();
    benchmark::DoNotOptimize(m.end_cycle());
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedSort)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
