// Irregular-workload overlap study — the paper's Figure-7 h/n/P sweep
// re-run over the registry's irregular suite (bfs, spmv, ptrchase,
// histsort).
//
//   E = (Tcomm,1 - Tcomm,h) / Tcomm,1 * 100
//
// The paper's regular kernels bound the question from both sides
// (sorting ~35%, FFT >95%); these four probe the territory between:
// data-dependent remote traffic (bfs, spmv), a pure serial-dependence
// chain where only the other h-1 threads can hide latency (ptrchase),
// and an all-to-all one-sided scatter (histsort). Every point verifies
// its application result against the host reference before reporting.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "core/overlap.hpp"
#include "workloads/ptrchase.hpp"
#include "workloads/registry.hpp"

using namespace emx;
using namespace emx::bench;

namespace {

/// Per-PE link budget for the ptrchase panels. The app's unit of work
/// is the stream (hops per stream is fixed), so the sweep must divide a
/// constant budget across the h streams or E would measure added work,
/// not hidden latency. 240 divides evenly by every default h.
constexpr std::uint32_t kPtrchaseHopsPerPe = 240;

/// One verified run of a registry workload; returns the machine report.
MachineReport run_app(const std::string& app, const MachineConfig& base,
                      std::uint64_t n, std::uint32_t threads) {
  Machine machine(base);
  std::unique_ptr<workloads::Workload> workload;
  if (app == "ptrchase") {
    workloads::PtrchaseParams pp;
    pp.n = n;
    pp.threads = threads;
    pp.seed = 1;
    pp.hops = kPtrchaseHopsPerPe / threads;
    auto chase = std::make_unique<workloads::PtrchaseApp>(machine, pp);
    chase->setup();
    workload = std::move(chase);
  } else {
    workloads::Params params;
    params.size_per_proc = n / base.proc_count;
    params.threads = threads;
    params.seed = 1;
    std::string err;
    workload = workloads::build(machine, app, params, err);
    if (workload == nullptr) {
      std::fprintf(stderr, "irregular_overlap: %s\n", err.c_str());
      std::exit(1);
    }
  }
  machine.run();
  if (workload->verifiable() && !workload->verify()) {
    std::fprintf(stderr,
                 "irregular_overlap: %s result failed verification "
                 "(n=%llu h=%u P=%u)\n",
                 app.c_str(), static_cast<unsigned long long>(n), threads,
                 base.proc_count);
    std::exit(1);
  }
  return machine.report();
}

void run_panel(const std::string& app, const FigureOptions& opt,
               std::uint32_t procs, double* peak_out) {
  MachineConfig cfg = opt.base;
  cfg.proc_count = procs;
  const auto sizes = opt.sizes_for(procs);
  std::vector<std::string> header = {"threads"};
  for (auto n : sizes) header.push_back("n=" + size_label(n));
  Table table(header);

  std::vector<std::uint32_t> threads = opt.threads;
  if (std::find(threads.begin(), threads.end(), 1u) == threads.end()) {
    threads.insert(threads.begin(), 1u);
  }

  std::vector<OverlapSeries> series(sizes.size());
  for (auto h : threads) {
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      series[si].add(h, comm_seconds(run_app(app, cfg, sizes[si], h),
                                     opt.metric));
    }
  }
  for (std::size_t hi = 0; hi < threads.size(); ++hi) {
    std::vector<std::string> row = {std::to_string(threads[hi])};
    for (auto& s : series) {
      row.push_back(Table::cell(s.points()[hi].efficiency_percent));
    }
    table.add_row(std::move(row));
  }
  print_panel(app + " P=" + std::to_string(procs), table, opt.csv);
  double peak = *peak_out;
  for (auto& s : series) peak = std::max(peak, s.best_efficiency_percent());
  *peak_out = peak;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  define_figure_flags(flags);
  flags.parse(argc, argv);
  const FigureOptions opt = figure_options(flags);

  std::printf(
      "Irregular-suite overlap study: efficiency of overlapping, "
      "percent\n");

  const char* apps[] = {"bfs", "spmv", "ptrchase", "histsort"};
  std::string summary;
  for (const char* app : apps) {
    double peak = 0.0;
    for (std::uint32_t procs : {16u, 64u}) {
      run_panel(app, opt, procs, &peak);
    }
    summary += std::string(" ") + app + ": " + Table::cell(peak) + "%";
  }
  std::printf("\nsummary: peak overlap per app —%s\n", summary.c_str());
  return 0;
}
