// Ablation: blocked vs cyclic data distribution for the FFT.
//
// The paper's companion study ([23], "Data and Workload Distribution in
// a Multithreaded Architecture") found that a simple-minded distribution
// with multithreading can rival hand-crafted distributions without it.
// Both layouts are implemented here: the blocked layout communicates in
// the FIRST log P iterations, the cyclic one in the LAST log P — same
// packet count, same twiddle work, different phase placement.
#include <cstdio>

#include "apps/fft.hpp"
#include "apps/fft_cyclic.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("size-per-proc", "512", "points per processor")
      .define("threads", "1,2,4,8", "thread counts to sweep")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);

  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n =
      procs * static_cast<std::uint64_t>(flags.integer("size-per-proc"));

  std::printf("Ablation: FFT data distribution — blocked vs cyclic\n");
  std::printf("P=%u n=%s points (full transform, local+remote phases)\n",
              procs, size_label(n).c_str());

  MachineConfig cfg;
  cfg.proc_count = procs;

  Table table({"threads", "blocked cycles", "cyclic cycles", "cyclic/blocked",
               "blocked comm(s)", "cyclic comm(s)"});
  for (auto h64 : flags.int_list("threads")) {
    const auto h = static_cast<std::uint32_t>(h64);

    Machine mb(cfg);
    apps::FftApp blocked(mb, apps::FftParams{.n = n, .threads = h,
                                             .include_local_phase = true});
    blocked.setup();
    mb.run();
    EMX_CHECK(blocked.verify_error() < 1e-5, "blocked FFT wrong");
    const MachineReport rb = mb.report();

    Machine mc(cfg);
    apps::CyclicFftApp cyclic(mc, apps::CyclicFftParams{.n = n, .threads = h});
    cyclic.setup();
    mc.run();
    EMX_CHECK(cyclic.verify_error() < 1e-5, "cyclic FFT wrong");
    const MachineReport rc = mc.report();

    table.add_row({std::to_string(h), Table::cell(rb.total_cycles),
                   Table::cell(rc.total_cycles),
                   Table::cell(static_cast<double>(rc.total_cycles) /
                               static_cast<double>(rb.total_cycles)),
                   seconds_cell(rb.mean_comm_seconds()),
                   seconds_cell(rc.mean_comm_seconds())});
  }
  print_panel("blocked vs cyclic", table, flags.boolean("csv"));
  std::printf(
      "\nfinding (matches [23]): with multithreading the layouts are nearly\n"
      "interchangeable — communication volume is identical and overlap hides\n"
      "the latency wherever the remote phase falls.\n");
  return 0;
}
