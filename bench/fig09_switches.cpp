// Figure 9 — average number of switches per processor, by type.
//
// Four panels: (a) sorting small n, (b) sorting large n, (c) FFT small n,
// (d) FFT large n; three series per panel: remote-read switches,
// iteration-synchronisation switches, thread-synchronisation switches.
//
// Expected shape (§5): remote-read switching is fixed w.r.t. the thread
// count (reads are fixed, derivable from n, h, P) and dominates;
// iteration-sync switching grows with the thread count and approaches the
// remote-read curve for the small problem size; thread-sync switching
// exists only for sorting (the ordered merge).
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

namespace {

void run_panel(const char* title, const FigureOptions& opt, std::uint64_t n,
               const std::function<MachineReport(std::uint64_t, std::uint32_t)>& run) {
  Table table({"threads", "remote-read", "iter-sync", "thread-sync"});
  for (auto h : opt.threads) {
    const MachineReport report = run(n, h);
    table.add_row({std::to_string(h),
                   Table::cell(report.mean_remote_read_switches()),
                   Table::cell(report.mean_iter_sync_switches()),
                   Table::cell(report.mean_thread_sync_switches())});
  }
  print_panel(title + (" n=" + size_label(n)), table, opt.csv);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  define_figure_flags(flags);
  flags.parse(argc, argv);
  const FigureOptions opt = figure_options(flags);

  std::printf("Figure 9: average number of switches per processor\n");

  MachineConfig p64 = opt.base;
  p64.proc_count = 64;
  const std::uint64_t small_n = opt.per_proc_sizes.front() * 64;
  const std::uint64_t large_n = opt.per_proc_sizes.back() * 64;

  auto sort = [&](std::uint64_t n, std::uint32_t h) { return run_sort(p64, n, h); };
  auto fft = [&](std::uint64_t n, std::uint32_t h) { return run_fft(p64, n, h); };

  run_panel("(a) Sorting P=64,", opt, small_n, sort);
  run_panel("(b) Sorting P=64,", opt, large_n, sort);
  run_panel("(c) FFT P=64,", opt, small_n, fft);
  run_panel("(d) FFT P=64,", opt, large_n, fft);
  return 0;
}
