// Ablation: reply packets through the IBU's high-priority FIFO.
//
// The paper's conclusion calls for fine-tuning "mechanisms for hardware
// thread scheduling": the EMC-Y IBU already has two priority levels
// (§2.2). Routing read replies through the high level lets suspended
// threads resume ahead of newly arriving invocations — this bench
// measures whether that helps the two applications.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("size-per-proc", "1024", "elements per processor")
      .define("threads", "1,2,4,8,16", "thread counts to sweep")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);

  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n =
      procs * static_cast<std::uint64_t>(flags.integer("size-per-proc"));

  std::printf("Ablation: read replies via the IBU high-priority FIFO\n");
  std::printf("P=%u n=%s\n", procs, size_label(n).c_str());

  MachineConfig normal;
  normal.proc_count = procs;
  normal.priority_replies = false;
  MachineConfig prio = normal;
  prio.priority_replies = true;

  for (const char* app : {"sorting", "fft"}) {
    const bool is_sort = std::string(app) == "sorting";
    Table table({"threads", "normal cycles", "priority cycles", "speedup",
                 "normal comm(s)", "priority comm(s)"});
    for (auto h64 : flags.int_list("threads")) {
      const auto h = static_cast<std::uint32_t>(h64);
      const MachineReport rn =
          is_sort ? run_sort(normal, n, h) : run_fft(normal, n, h);
      const MachineReport rp =
          is_sort ? run_sort(prio, n, h) : run_fft(prio, n, h);
      table.add_row({std::to_string(h), Table::cell(rn.total_cycles),
                     Table::cell(rp.total_cycles),
                     Table::cell(static_cast<double>(rn.total_cycles) /
                                 static_cast<double>(rp.total_cycles)),
                     seconds_cell(rn.mean_comm_seconds()),
                     seconds_cell(rp.mean_comm_seconds())});
    }
    print_panel(app, table, flags.boolean("csv"));
  }
  std::printf(
      "\ninterpretation: with FIFO resumption the reply already reaches the\n"
      "front quickly at small h; priority scheduling matters once many\n"
      "invocations/wakes share the queue (large h, small problems).\n");
  return 0;
}
