// §2.3 anchor: "A typical remote read takes approximately 1 us."
//
// Measures the single remote read round trip — request generation, OBU,
// Omega fabric, by-pass DMA service, reply fabric, MU dispatch — across
// processor counts and hop distances, on the detailed network.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

using namespace emx;

namespace {

/// RTT in cycles from issue to resumption, measured inside the thread.
Cycle measure_rtt(std::uint32_t procs, ProcId target) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.network = NetworkModel::kDetailed;
  Machine m(cfg);
  m.memory(target).write(rt::kReservedWords, 42);

  // Host-side timestamping around the split-phase read (observation, not
  // simulated instructions).
  static Cycle issue_cycle, return_cycle;
  const auto entry = m.register_entry(
      [&m, target](rt::ThreadApi api, Word) -> rt::ThreadBody {
        issue_cycle = m.sim().now();
        (void)co_await api.remote_read(rt::GlobalAddr{target, rt::kReservedWords});
        return_cycle = m.sim().now();
      });
  m.spawn(0, entry, 0);
  m.run();
  return return_cycle - issue_cycle;
}

/// Distribution of read round trips under load: every PE runs the
/// paper's 12-clock read loop against its mate with h threads; per-read
/// latencies are recovered from the trace (issue -> return per thread).
Histogram loaded_latency_histogram(std::uint32_t procs, std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.network = NetworkModel::kDetailed;
  trace::VectorTraceSink sink;
  Machine m(cfg, &sink);
  const auto entry = m.register_entry([procs](rt::ThreadApi api, Word) -> rt::ThreadBody {
    const ProcId mate = api.proc() ^ (procs / 2);
    for (int i = 0; i < 128; ++i) {
      co_await api.overhead(11);
      (void)co_await api.remote_read(
          rt::GlobalAddr{mate, rt::kReservedWords + i % 16});
    }
  });
  for (ProcId p = 0; p < procs; ++p)
    for (std::uint32_t t = 0; t < h; ++t) m.spawn(p, entry, t);
  m.run();

  return analyze_read_latency(sink.events()).histogram;
}

}  // namespace

int main() {
  std::printf("Single remote read round-trip time (detailed Omega network)\n");
  std::printf("paper (section 2.3): ~1 us; section 4: 20-40 clocks under normal load\n\n");
  Table table({"P", "target", "hops", "RTT cycles", "RTT us @20MHz"});
  for (std::uint32_t procs : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (ProcId target : {static_cast<ProcId>(procs / 2),
                          static_cast<ProcId>(procs - 1)}) {
      if (target == 0) continue;
      const Cycle rtt = measure_rtt(procs, target);
      MachineConfig cfg;
      cfg.proc_count = procs;
      cfg.network = NetworkModel::kDetailed;
      Machine probe(cfg);
      const unsigned hops = probe.network().hop_count(0, target);
      char us[32];
      std::snprintf(us, sizeof us, "%.2f", cycles_to_seconds(rtt, cfg.clock_hz) * 1e6);
      table.add_row({std::to_string(procs), std::to_string(target),
                     std::to_string(hops), std::to_string(rtt), us});
    }
  }
  std::fputs(table.to_text().c_str(), stdout);

  for (std::uint32_t h : {1u, 4u}) {
    const Histogram hist = loaded_latency_histogram(16, h);
    std::printf(
        "\nloaded read latency distribution, P=16, h=%u (12-clock read "
        "loop against the mate; cycles):\n",
        h);
    std::printf("p50=%.0f  p95=%.0f  samples=%llu\n%s", hist.percentile(50),
                hist.percentile(95),
                static_cast<unsigned long long>(hist.total()),
                hist.ascii(48).c_str());
  }
  return 0;
}
