// The Saavedra-Barrera analytic multithreading model (paper ref. [16])
// against the simulator.
//
// A synthetic kernel with run length R, remote-read latency L and switch
// cost C sweeps the thread count; the measured processor efficiency
// (useful cycles / total cycles) is compared with the model's
// linear/transition/saturation envelope.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "model/saavedra.hpp"

using namespace emx;

namespace {

struct Measured {
  double efficiency = 0.0;  ///< compute cycles / total cycles
  double latency = 0.0;     ///< observed mean RTT (for model input)
};

Measured run_kernel(std::uint32_t h, Cycle run_length, int reads_per_thread) {
  MachineConfig cfg;
  cfg.proc_count = 2;  // PE0 computes; PE1 only serves reads
  Machine m(cfg);
  const auto entry = m.register_entry(
      [run_length, reads_per_thread](rt::ThreadApi api, Word) -> rt::ThreadBody {
        for (int i = 0; i < reads_per_thread; ++i) {
          co_await api.compute(run_length);
          (void)co_await api.remote_read(
              rt::GlobalAddr{1, rt::kReservedWords});
        }
      });
  for (std::uint32_t t = 0; t < h; ++t) m.spawn(0, entry, t);
  m.run();
  const MachineReport r = m.report();
  Measured out;
  out.efficiency = static_cast<double>(r.procs[0].compute) /
                   static_cast<double>(r.total_cycles);
  out.latency = r.network.latency.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  // Default R=40 keeps the by-pass DMA's throughput out of the picture
  // (R + C exceeds its per-request occupancy), isolating the [16] model's
  // assumptions; pass --run-length=12 to see where the service pipe
  // bends the saturation plateau below the model.
  flags.define("run-length", "40", "R: useful cycles between remote reads")
      .define("reads", "400", "remote reads per thread")
      .define("threads", "1,2,3,4,5,6,8,12,16", "thread counts to sweep")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);
  const auto run_length = static_cast<Cycle>(flags.integer("run-length"));
  const int reads = static_cast<int>(flags.integer("reads"));

  MachineConfig cfg;
  // Effective per-reference switch cost: issue + register save + dispatch.
  const double switch_cost = static_cast<double>(
      cfg.packet_gen_cycles + cfg.switch_save_cycles + cfg.mu_dispatch_cycles);

  // Use the measured single-thread latency as the model's L: the exposed
  // wait from suspension to resumption.
  const Measured probe = run_kernel(1, run_length, reads);
  model::MultithreadingModel model{
      .run_length = static_cast<double>(run_length),
      .latency = 2.0 + static_cast<double>(cfg.dma_service_cycles) +
                 2.0 * (2 + 1) + 4.0,
      .switch_cost = switch_cost};
  // Calibrate L from the single-thread measurement instead:
  // eff(1) = R / (R + C + L)  =>  L = R/eff1 - R - C.
  model.latency = static_cast<double>(run_length) / probe.efficiency -
                  static_cast<double>(run_length) - switch_cost;

  std::printf("Saavedra-Barrera model vs EM-X simulator\n");
  std::printf("R=%llu C=%.0f L(calibrated)=%.1f  saturation at h=%.2f\n",
              static_cast<unsigned long long>(run_length), switch_cost,
              model.latency, model.saturation_threads());

  Table table({"threads", "model eff", "measured eff", "rel err %", "region"});
  for (auto h64 : flags.int_list("threads")) {
    const auto h = static_cast<std::uint32_t>(h64);
    const Measured meas = run_kernel(h, run_length, reads);
    const double predicted = model.efficiency(h);
    const double err = 100.0 * (meas.efficiency - predicted) /
                       (predicted > 0 ? predicted : 1.0);
    table.add_row({std::to_string(h), Table::cell(predicted),
                   Table::cell(meas.efficiency), Table::cell(err),
                   model::MultithreadingModel::region_name(model.region(h))});
  }
  if (flags.boolean("csv")) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_text().c_str(), stdout);
  }
  std::printf(
      "\npaper ref [16]: linear region grows with h; saturation depends only "
      "on the reference rate and switch cost.\n");
  return 0;
}
