// Ablation: central vs tree iteration barrier.
//
// The paper inserts a barrier at the end of every iteration (§4) and
// identifies iteration-synchronisation switching as the main
// synchronisation cost (§5, "It is our next goal to fine-tune mechanisms
// for hardware thread scheduling and synchronization"). This bench
// compares the shipped central coordinator against the binary-tree
// combining variant across processor counts and thread counts.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"

using namespace emx;

namespace {

/// Pure barrier workout: `rounds` empty iterations.
MachineReport run_barriers(std::uint32_t procs, std::uint32_t h, int rounds,
                           BarrierTopology topo) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.barrier = topo;
  Machine m(cfg);
  const auto entry = m.register_entry([rounds](rt::ThreadApi api, Word) -> rt::ThreadBody {
    for (int r = 0; r < rounds; ++r) {
      co_await api.compute(20);
      co_await api.iteration_barrier();
    }
  });
  m.configure_barrier(h);
  for (ProcId p = 0; p < procs; ++p)
    for (std::uint32_t t = 0; t < h; ++t) m.spawn(p, entry, t);
  m.run();
  return m.report();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("rounds", "50", "barrier episodes to time")
      .define("threads", "4", "threads per PE")
      .define("procs", "2,4,8,16,32,64", "processor counts to sweep")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);
  const int rounds = static_cast<int>(flags.integer("rounds"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));

  std::printf("Ablation: iteration barrier — central coordinator vs binary tree\n");
  std::printf("%d rounds, h=%u threads per PE; cycles per barrier episode\n",
              rounds, h);
  Table table({"P", "central cyc/episode", "tree cyc/episode", "central/tree",
               "central iter-sync/PE", "tree iter-sync/PE"});
  for (auto p64 : flags.int_list("procs")) {
    const auto procs = static_cast<std::uint32_t>(p64);
    const MachineReport central =
        run_barriers(procs, h, rounds, BarrierTopology::kCentral);
    const MachineReport tree =
        run_barriers(procs, h, rounds, BarrierTopology::kTree);
    const double c = static_cast<double>(central.total_cycles) / rounds;
    const double t = static_cast<double>(tree.total_cycles) / rounds;
    table.add_row({std::to_string(procs), Table::cell(c), Table::cell(t),
                   Table::cell(c / t),
                   Table::cell(central.mean_iter_sync_switches()),
                   Table::cell(tree.mean_iter_sync_switches())});
  }
  if (flags.boolean("csv")) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_text().c_str(), stdout);
  }
  return 0;
}
