// Ablation: fault recovery cost vs. thread count — drop rate x threads.
//
// The reliability protocol turns a lost split-phase read into extra
// latency (timeout + retransmit round-trip). Latency is exactly what
// fine-grain multithreading exists to hide (paper §1): with enough
// threads per PE the EXU keeps running other work while a damaged read
// recovers, so the slowdown from a lossy fabric should shrink as h
// grows. This bench sweeps drop rate x threads on sorting and reports
// the slowdown over the fault-free run at the same h, plus the recovery
// traffic that produced it.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("size-per-proc", "512", "elements per processor")
      .define("threads", "1,2,4,8", "thread counts to sweep")
      .define("drop-rates", "0,2,5,10", "drop rates to sweep, permille")
      .define("timeout", "4096", "read retransmit timeout, cycles")
      .define("fault-seed", "1026839", "fault plan RNG seed")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);

  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n =
      procs * static_cast<std::uint64_t>(flags.integer("size-per-proc"));

  std::printf("Ablation: packet-drop recovery vs multithreading depth\n");
  std::printf("P=%u n=%s timeout=%lld\n", procs, size_label(n).c_str(),
              static_cast<long long>(flags.integer("timeout")));

  MachineConfig base;
  base.proc_count = procs;
  base.fault.timeout_cycles = static_cast<Cycle>(flags.integer("timeout"));
  base.fault.seed = static_cast<std::uint64_t>(flags.integer("fault-seed"));

  for (auto rate_pm : flags.int_list("drop-rates")) {
    MachineConfig cfg = base;
    cfg.fault.drop_rate = static_cast<double>(rate_pm) / 1000.0;
    // Recovery traffic split by packet class: reads ride the timeout +
    // retransmit path ("rd-retx"), while writes/invokes add ACK packets
    // and their own retransmits ("msg-retx", "acks").
    Table table({"threads", "cycles", "fault-free", "slowdown", "dropped",
                 "rd-retx", "msg-retx", "acks", "dups-culled",
                 "worst recovery"});
    for (auto h64 : flags.int_list("threads")) {
      const auto h = static_cast<std::uint32_t>(h64);
      const MachineReport clean = run_sort(base, n, h);
      const MachineReport faulted = run_sort(cfg, n, h);
      const double slowdown = static_cast<double>(faulted.total_cycles) /
                              static_cast<double>(clean.total_cycles);
      const auto& f = faulted.fault;
      table.add_row(
          {std::to_string(h), Table::cell(faulted.total_cycles),
           Table::cell(clean.total_cycles), Table::cell(slowdown),
           Table::cell(f.injected[static_cast<std::size_t>(
               fault::FaultKind::kDrop)]),
           Table::cell(f.retries), Table::cell(f.msg_retransmits),
           Table::cell(f.acks_sent),
           Table::cell(f.dup_replies_suppressed + f.dup_msgs_suppressed +
                       f.dup_acks_ignored),
           Table::cell(f.worst_recovery_cycles)});
    }
    char title[64];
    std::snprintf(title, sizeof title, "sorting, drop rate %.1f%%",
                  static_cast<double>(rate_pm) / 10.0);
    print_panel(title, table, flags.boolean("csv"));
  }
  return 0;
}
