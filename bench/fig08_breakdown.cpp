// Figure 8 — distribution of execution time on 64 processors.
//
// Four panels: (a) sorting small n, (b) sorting large n, (c) FFT small n,
// (d) FFT large n; stacked shares of computation / overhead /
// communication / switching per thread count.
//
// Expected shape (§5): computation shares stay constant; the one-thread
// column shows the largest communication share (no overlap); sorting is
// communication-dominated while FFT is computation-dominated; switching
// grows with the thread count (iteration-synchronisation polling).
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

namespace {

void run_panel(const char* title, const FigureOptions& opt,
               const MachineConfig& cfg, std::uint64_t n,
               const std::function<MachineReport(std::uint64_t, std::uint32_t)>& run) {
  Table table({"threads", "compute%", "overhead%", "comm%", "switch%"});
  for (auto h : opt.threads) {
    const MachineReport report = run(n, h);
    const auto s = report.shares();
    table.add_row({std::to_string(h), Table::cell(s.compute),
                   Table::cell(s.overhead), Table::cell(s.comm),
                   Table::cell(s.switching)});
  }
  (void)cfg;
  print_panel(title + (" n=" + size_label(n)), table, opt.csv);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  define_figure_flags(flags);
  flags.parse(argc, argv);
  const FigureOptions opt = figure_options(flags);

  std::printf("Figure 8: distribution of execution time on 64 processors\n");

  MachineConfig p64 = opt.base;
  p64.proc_count = 64;
  const std::uint64_t small_n = opt.per_proc_sizes.front() * 64;
  const std::uint64_t large_n = opt.per_proc_sizes.back() * 64;

  auto sort = [&](std::uint64_t n, std::uint32_t h) { return run_sort(p64, n, h); };
  auto fft = [&](std::uint64_t n, std::uint32_t h) { return run_fft(p64, n, h); };

  run_panel("(a) B-sorting P=64,", opt, p64, small_n, sort);
  run_panel("(b) B-sorting P=64,", opt, p64, large_n, sort);
  run_panel("(c) FFT P=64,", opt, p64, small_n, fft);
  run_panel("(d) FFT P=64,", opt, p64, large_n, fft);
  return 0;
}
