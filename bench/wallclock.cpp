// Simulator throughput benchmark: simulated cycles per wall-second.
//
// Runs the frozen-cycle workloads (sort, fft, plus the irregular suite:
// bfs, spmv, ptrchase, histsort) at each app's registry-default flags
// through snapshot::run() — the same end-to-end path every real
// invocation takes, trace digest included — N times each and reports the
// median. Each app also records its peak resident set (VmHWM, reset via
// /proc/self/clear_refs before the app's reps, so the number is per-app
// rather than cumulative). Results land in BENCH_wallclock.json at the
// repo root; the checked-in copy is the perf trajectory, and CI's
// perf-smoke job runs `wallclock --check` to fail any change that
// regresses sort throughput more than 15% below the recorded value
// (sort stays the gate: it is the longest-recorded series).
//
// Modes:
//   wallclock                         measure, write --json
//   wallclock --check                 measure, compare against --json,
//                                     exit 1 if sort falls below 85%
//   wallclock --baseline-from=F       embed F's results as "baseline"
//                                     in the written file (before/after)
//
// Schema 4 adds the execution engine to every row ("engine", "threads")
// and records the parallel engine's throughput as extra rows keyed
// "<app>-par<shards>" after the sequential ones. The perf gate stays
// keyed to the sequential sort row: par wall-clock depends on the host's
// core count, which CI runners do not guarantee, so par rows are
// trajectory data, not a gate.
//
// JSON layout contract (writer and --check parser agree on it): the
// top-level per-app objects, "sort" first, precede "baseline", so the
// first "cycles_per_sec" after the first "sort" key is the current
// value ("sort-par4" does not match the quoted key "sort").
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "common/cli.hpp"
#include "snapshot/runner.hpp"
#include "workloads/registry.hpp"

namespace {

using emx::snapshot::RunManifest;
using emx::snapshot::RunOptions;
using emx::snapshot::RunResult;

/// emx_run's default recipe for one of the frozen-cycle workloads: the
/// registry's per-app defaults, P=16, seed 1 (the same run whose cycle
/// count the tests freeze).
RunManifest default_manifest(const std::string& app) {
  const emx::workloads::Spec* spec =
      emx::workloads::Registry::instance().find(app);
  if (spec == nullptr) {
    std::fprintf(stderr, "wallclock: %s\n",
                 emx::workloads::unknown_app_message(app).c_str());
    std::exit(2);
  }
  RunManifest m;
  m.app = app;
  m.size_per_proc = spec->default_size_per_proc;
  m.threads = spec->default_threads;
  m.seed = 1;
  m.config.proc_count = 16;
  return m;
}

/// One benchmark row: an app under one engine configuration. `threads`
/// is the host-thread count the row ran with (1 for the sequential
/// loop, the shard count for the parallel engine).
struct Row {
  std::string key;     ///< JSON key ("sort", "sort-par4", ...)
  std::string app;     ///< registry workload name
  std::string engine;  ///< "seq" | "par"
  std::uint32_t shards = 0;
};

struct Sample {
  std::uint64_t cycles = 0;
  double wall_seconds = 0;
  double cycles_per_sec = 0;
  long peak_rss_kb = 0;
};

/// Resets the kernel's peak-RSS watermark (VmHWM) so the next
/// peak_rss_kb() read covers only work done since. Best-effort: on
/// kernels without CONFIG_MEM_SOFT_DIRTY the write fails and the
/// reading falls back to the cumulative getrusage figure.
void reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

/// Peak resident set in KiB: VmHWM from /proc/self/status (resettable,
/// per-measurement), falling back to getrusage's process-lifetime
/// ru_maxrss where /proc is unavailable.
long peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtol(line.c_str() + 6, nullptr, 10);
  }
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) return ru.ru_maxrss;
  return 0;
}

Sample measure_once(const Row& row) {
  RunOptions opts;
  opts.manifest = default_manifest(row.app);
  if (row.engine == "par") {
    opts.engine.kind = emx::sim::EngineSpec::Kind::kParallel;
    opts.engine.shards = row.shards;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = emx::snapshot::run(opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (r.exit_code != 0) {
    std::fprintf(stderr, "wallclock: %s run failed (exit %d): %s\n",
                 row.key.c_str(), r.exit_code, r.error.c_str());
    std::exit(1);
  }
  Sample s;
  s.cycles = r.end_cycle;
  s.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (s.wall_seconds <= 0) s.wall_seconds = 1e-9;
  s.cycles_per_sec = static_cast<double>(s.cycles) / s.wall_seconds;
  return s;
}

Sample measure(const Row& row, int reps) {
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  reset_peak_rss();
  for (int i = 0; i < reps; ++i) samples.push_back(measure_once(row));
  const long rss = peak_rss_kb();
  // Median by throughput; cycle count is identical across reps (the
  // simulation is deterministic), so only the denominator varies.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.cycles_per_sec < b.cycles_per_sec;
            });
  Sample s = samples[samples.size() / 2];
  s.peak_rss_kb = rss;
  return s;
}

std::string json_object(const Row& row, const Sample& s) {
  const std::uint32_t threads = row.engine == "par" ? row.shards : 1;
  char buf[260];
  std::snprintf(buf, sizeof buf,
                "{\"engine\": \"%s\", \"threads\": %u, \"cycles\": %llu, "
                "\"wall_s_median\": %.6f, "
                "\"cycles_per_sec\": %.1f, \"peak_rss_kb\": %ld}",
                row.engine.c_str(), threads,
                static_cast<unsigned long long>(s.cycles), s.wall_seconds,
                s.cycles_per_sec, s.peak_rss_kb);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the current (non-baseline) cycles_per_sec for `app` from a
/// BENCH_wallclock.json produced by this tool. Relies on the layout
/// contract documented at the top of the file.
double recorded_throughput(const std::string& json, const std::string& app) {
  const auto app_pos = json.find("\"" + app + "\"");
  if (app_pos == std::string::npos) return 0;
  const auto key_pos = json.find("\"cycles_per_sec\"", app_pos);
  if (key_pos == std::string::npos) return 0;
  const auto colon = json.find(':', key_pos);
  if (colon == std::string::npos) return 0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

/// Pulls the "sort"/"fft"/"label" entries out of a previous results file
/// so they can be embedded as the "baseline" block (before/after in one
/// file). Returns "" when the file is missing or unparsable.
std::string baseline_block(const std::string& path) {
  const std::string json = read_file(path);
  if (json.empty()) return {};
  const double sort_tp = recorded_throughput(json, "sort");
  const double fft_tp = recorded_throughput(json, "fft");
  if (sort_tp <= 0 || fft_tp <= 0) return {};
  auto extract = [&json](const std::string& app) -> std::string {
    const auto start = json.find('{', json.find("\"" + app + "\""));
    const auto end = json.find('}', start);
    if (start == std::string::npos || end == std::string::npos) return "{}";
    return json.substr(start, end - start + 1);
  };
  std::ostringstream out;
  out << "  \"baseline\": {\n"
      << "    \"sort\": " << extract("sort") << ",\n"
      << "    \"fft\": " << extract("fft") << "\n"
      << "  },\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  emx::CliFlags flags;
  flags.define("reps", "5", "repetitions per workload (median reported)")
      .define("json", "BENCH_wallclock.json", "results file to write/check")
      .define("check", "false",
              "gate mode: measure and fail if sort throughput falls >15% "
              "below the value recorded in --json")
      .define("baseline-from", "",
              "embed this results file as the \"baseline\" block");
  flags.parse(argc, argv);

  const int reps = static_cast<int>(flags.integer("reps"));
  const std::string json_path = flags.str("json");

  if (flags.boolean("check")) {
    const double recorded = recorded_throughput(read_file(json_path), "sort");
    if (recorded <= 0) {
      std::fprintf(stderr, "wallclock --check: no recorded sort throughput in %s\n",
                   json_path.c_str());
      return 2;
    }
    const Sample s = measure({"sort", "sort", "seq", 0}, reps);
    const double floor = 0.85 * recorded;
    std::printf("perf-smoke: sort %.0f cycles/s (recorded %.0f, floor %.0f)\n",
                s.cycles_per_sec, recorded, floor);
    if (s.cycles_per_sec < floor) {
      std::fprintf(stderr,
                   "perf-smoke FAIL: sort throughput regressed more than 15%% "
                   "below the recorded value — rerun bench/wallclock and "
                   "commit the new BENCH_wallclock.json if intentional\n");
      return 1;
    }
    return 0;
  }

  // "sort" must stay first: the --check parser and the baseline
  // extractor both key off it (layout contract above). The par rows come
  // after every sequential row — they are trajectory data, not gated
  // (their wall-clock depends on the host's core count; sort-par4 is the
  // ISSUE's ≥2x-on-4-cores demonstration row).
  const std::vector<Row> rows = {
      {"sort", "sort", "seq", 0},          {"fft", "fft", "seq", 0},
      {"bfs", "bfs", "seq", 0},            {"spmv", "spmv", "seq", 0},
      {"ptrchase", "ptrchase", "seq", 0},  {"histsort", "histsort", "seq", 0},
      {"sort-par4", "sort", "par", 4},     {"fft-par4", "fft", "par", 4},
      {"spmv-par4", "spmv", "par", 4},
  };
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"wallclock\",\n"
      << "  \"schema\": 4,\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"flags\": \"registry defaults per app (procs=16 seed=1)\",\n";
  for (const Row& row : rows) {
    const Sample s = measure(row, reps);
    std::printf(
        "%-12s engine=%s threads=%u cycles=%llu median_wall=%.4fs "
        "throughput=%.0f cycles/s peak_rss=%ldKiB\n",
        (row.key + ":").c_str(), row.engine.c_str(),
        row.engine == "par" ? row.shards : 1,
        static_cast<unsigned long long>(s.cycles), s.wall_seconds,
        s.cycles_per_sec, s.peak_rss_kb);
    out << "  \"" << row.key << "\": " << json_object(row, s) << ",\n";
  }
  if (!flags.str("baseline-from").empty())
    out << baseline_block(flags.str("baseline-from"));
  out << "  \"unit\": \"simulated cycles per wall-second\"\n"
      << "}\n";

  std::ofstream of(json_path, std::ios::binary);
  of << out.str();
  if (!of) {
    std::fprintf(stderr, "wallclock: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
