// Figure 6 — communication time (seconds) vs number of threads.
//
// Four panels, as in the paper:
//   (a) bitonic sorting, P=16     (b) bitonic sorting, P=64
//   (c) FFT,            P=16      (d) FFT,            P=64
// Rows are thread counts h, one column per data size n. Communication
// time is the mean exposed (idle) time per processor.
//
// Expected shape (paper §4): the time is minimal at h = 2..4 — two to
// four threads suffice to mask the 20-40-clock remote read latency given
// sorting's 12-clock run length — and larger h brings no further benefit
// while synchronisation switches grow. FFT's valley is much deeper than
// sorting's.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

namespace {

void run_panel(const char* title, const FigureOptions& opt, std::uint32_t procs,
               const std::function<MachineReport(const MachineConfig&,
                                                 std::uint64_t, std::uint32_t)>& run) {
  const auto sizes = opt.sizes_for(procs);
  std::vector<std::string> header = {"threads"};
  for (auto n : sizes) header.push_back("n=" + size_label(n));
  Table table(header);
  for (auto h : opt.threads) {
    std::vector<std::string> row = {std::to_string(h)};
    for (auto n : sizes) {
      const MachineReport report = run(opt.base, n, h);
      row.push_back(seconds_cell(comm_seconds(report, opt.metric)));
    }
    table.add_row(std::move(row));
  }
  print_panel(title, table, opt.csv);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  define_figure_flags(flags);
  flags.parse(argc, argv);
  const FigureOptions opt = figure_options(flags);

  std::printf("Figure 6: communication time in seconds (EM-X @ 20 MHz)\n");
  std::printf("paper: minimum at 2-4 threads; FFT valleys far deeper than sorting\n");

  MachineConfig p16 = opt.base;
  p16.proc_count = 16;
  MachineConfig p64 = opt.base;
  p64.proc_count = 64;

  run_panel("(a) B-sorting P=16", opt, 16,
            [&](const MachineConfig&, std::uint64_t n, std::uint32_t h) {
              return run_sort(p16, n, h);
            });
  run_panel("(b) B-sorting P=64", opt, 64,
            [&](const MachineConfig&, std::uint64_t n, std::uint32_t h) {
              return run_sort(p64, n, h);
            });
  run_panel("(c) FFT P=16", opt, 16,
            [&](const MachineConfig&, std::uint64_t n, std::uint32_t h) {
              return run_fft(p16, n, h);
            });
  run_panel("(d) FFT P=64", opt, 64,
            [&](const MachineConfig&, std::uint64_t n, std::uint32_t h) {
              return run_fft(p64, n, h);
            });
  return 0;
}
