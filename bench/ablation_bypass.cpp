// Ablation: EM-X by-pass DMA vs EM-4-style EXU read servicing (§2.1).
//
// "the EM-4 ... treats a remote read as another 1-instruction thread
//  which consumes processor cycles. This consumption adversely affects
//  the performance." The by-pass DMA (IBU->MCU->OBU) is the EM-X fix;
// this bench quantifies it on both applications.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

using namespace emx;
using namespace emx::bench;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("size-per-proc", "1024", "elements per processor")
      .define("threads", "1,2,4,8", "thread counts to sweep")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);

  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n = procs * static_cast<std::uint64_t>(flags.integer("size-per-proc"));

  std::printf("Ablation: read servicing — EM-X by-pass DMA vs EM-4 EXU threads\n");
  std::printf("P=%u n=%s\n", procs, size_label(n).c_str());

  MachineConfig emx_cfg;
  emx_cfg.proc_count = procs;
  emx_cfg.read_service = ReadServiceMode::kBypassDma;
  MachineConfig em4_cfg = emx_cfg;
  em4_cfg.read_service = ReadServiceMode::kExuThread;

  for (const char* app : {"sorting", "fft"}) {
    Table table({"threads", "EM-X cycles", "EM-4 cycles", "EM-4/EM-X",
                 "EM-4 EXU-service%"});
    for (auto h64 : flags.int_list("threads")) {
      const auto h = static_cast<std::uint32_t>(h64);
      const bool is_sort = std::string(app) == "sorting";
      const MachineReport rx =
          is_sort ? run_sort(emx_cfg, n, h) : run_fft(emx_cfg, n, h);
      const MachineReport r4 =
          is_sort ? run_sort(em4_cfg, n, h) : run_fft(em4_cfg, n, h);
      const double ratio = static_cast<double>(r4.total_cycles) /
                           static_cast<double>(rx.total_cycles);
      const double svc_pct =
          100.0 * r4.mean_read_service_cycles() /
          static_cast<double>(r4.total_cycles);
      table.add_row({std::to_string(h), Table::cell(rx.total_cycles),
                     Table::cell(r4.total_cycles), Table::cell(ratio),
                     Table::cell(svc_pct)});
    }
    print_panel(app, table, flags.boolean("csv"));
  }
  return 0;
}
