// Figure 7 — efficiency of overlapping (percent) vs number of threads.
//
//   E = (Tcomm,1 - Tcomm,h) / Tcomm,1 * 100
//
// Four panels as in the paper. Expected shape (§4): bitonic sorting
// reaches roughly 35% (small computation, thread synchronisation
// serialises the merges), FFT reaches over 95% for 2-4 threads (large
// run length, full thread computation parallelism).
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/overlap.hpp"

using namespace emx;
using namespace emx::bench;

namespace {

void run_panel(const char* title, const FigureOptions& opt, std::uint32_t procs,
               const std::function<MachineReport(std::uint64_t, std::uint32_t)>& run,
               double* peak_out) {
  const auto sizes = opt.sizes_for(procs);
  std::vector<std::string> header = {"threads"};
  for (auto n : sizes) header.push_back("n=" + size_label(n));
  Table table(header);

  // Ensure the h=1 baseline is part of the sweep.
  std::vector<std::uint32_t> threads = opt.threads;
  if (std::find(threads.begin(), threads.end(), 1u) == threads.end()) {
    threads.insert(threads.begin(), 1u);
  }

  std::vector<OverlapSeries> series(sizes.size());
  for (auto h : threads) {
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      series[si].add(h, comm_seconds(run(sizes[si], h), opt.metric));
    }
  }
  for (std::size_t hi = 0; hi < threads.size(); ++hi) {
    std::vector<std::string> row = {std::to_string(threads[hi])};
    for (auto& s : series) {
      row.push_back(Table::cell(s.points()[hi].efficiency_percent));
    }
    table.add_row(std::move(row));
  }
  print_panel(title, table, opt.csv);
  double peak = 0.0;
  for (auto& s : series) peak = std::max(peak, s.best_efficiency_percent());
  *peak_out = peak;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  define_figure_flags(flags);
  flags.parse(argc, argv);
  const FigureOptions opt = figure_options(flags);

  std::printf("Figure 7: efficiency of overlapping, percent\n");

  MachineConfig p16 = opt.base;
  p16.proc_count = 16;
  MachineConfig p64 = opt.base;
  p64.proc_count = 64;

  double sort16 = 0, sort64 = 0, fft16 = 0, fft64 = 0;
  run_panel("(a) B-sorting P=16", opt, 16,
            [&](std::uint64_t n, std::uint32_t h) { return run_sort(p16, n, h); },
            &sort16);
  run_panel("(b) B-sorting P=64", opt, 64,
            [&](std::uint64_t n, std::uint32_t h) { return run_sort(p64, n, h); },
            &sort64);
  run_panel("(c) FFT P=16", opt, 16,
            [&](std::uint64_t n, std::uint32_t h) { return run_fft(p16, n, h); },
            &fft16);
  run_panel("(d) FFT P=64", opt, 64,
            [&](std::uint64_t n, std::uint32_t h) { return run_fft(p64, n, h); },
            &fft64);

  std::printf(
      "\nsummary: peak overlap — sorting P=16: %.1f%%, P=64: %.1f%% "
      "(paper: ~35%%); FFT P=16: %.1f%%, P=64: %.1f%% (paper: >95%%)\n",
      sort16, sort64, fft16, fft64);
  return 0;
}
