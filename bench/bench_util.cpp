#include "bench_util.hpp"

#include <cstdio>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "common/assert.hpp"
#include "core/machine.hpp"

namespace emx::bench {

double comm_seconds(const MachineReport& report, CommMetric metric) {
  switch (metric) {
    case CommMetric::kIdle:
      return report.mean_comm_seconds();
    case CommMetric::kWallMinusWork:
      return (report.mean_comm_cycles() + report.mean_switching_cycles() +
              report.mean_read_service_cycles()) /
             report.clock_hz;
  }
  return 0.0;
}

std::vector<std::uint64_t> FigureOptions::sizes_for(std::uint32_t procs) const {
  std::vector<std::uint64_t> out;
  out.reserve(per_proc_sizes.size());
  for (auto s : per_proc_sizes) out.push_back(s * procs);
  return out;
}

void define_figure_flags(CliFlags& flags) {
  flags.define("threads", "1,2,3,4,8,16", "thread counts h to sweep")
      .define("sizes-per-proc", "256,1024,4096",
              "elements per processor (n/P) to sweep")
      .define("full", "false",
              "paper-scale sizes: n/P in {8K,16K,32K,64K,128K} (slow)")
      .define("csv", "false", "emit CSV instead of aligned text")
      .define("metric", "idle",
              "communication-time metric: idle | wall (total-compute-overhead)")
      .define("network", "fast", "network model: fast | detailed")
      .define("barrier", "central", "iteration barrier: central | tree")
      .define("read-service", "bypass", "read servicing: bypass | em4");
}

FigureOptions figure_options(const CliFlags& flags) {
  FigureOptions opt;
  for (auto v : flags.int_list("threads"))
    opt.threads.push_back(static_cast<std::uint32_t>(v));
  opt.full = flags.boolean("full");
  if (opt.full) {
    opt.per_proc_sizes = {8192, 16384, 32768, 65536, 131072};
  } else {
    for (auto v : flags.int_list("sizes-per-proc"))
      opt.per_proc_sizes.push_back(static_cast<std::uint64_t>(v));
  }
  opt.csv = flags.boolean("csv");
  const std::string metric = flags.str("metric");
  EMX_CHECK(metric == "idle" || metric == "wall", "bad --metric value");
  opt.metric = metric == "idle" ? CommMetric::kIdle : CommMetric::kWallMinusWork;
  const std::string net = flags.str("network");
  EMX_CHECK(net == "fast" || net == "detailed", "bad --network value");
  opt.base.network =
      net == "fast" ? NetworkModel::kFast : NetworkModel::kDetailed;
  const std::string bar = flags.str("barrier");
  EMX_CHECK(bar == "central" || bar == "tree", "bad --barrier value");
  opt.base.barrier =
      bar == "central" ? BarrierTopology::kCentral : BarrierTopology::kTree;
  const std::string rs = flags.str("read-service");
  EMX_CHECK(rs == "bypass" || rs == "em4", "bad --read-service value");
  opt.base.read_service =
      rs == "bypass" ? ReadServiceMode::kBypassDma : ReadServiceMode::kExuThread;
  return opt;
}

MachineReport run_sort(const MachineConfig& base, std::uint64_t n,
                       std::uint32_t threads) {
  MachineConfig cfg = base;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine, apps::BitonicParams{.n = n, .threads = threads});
  app.setup();
  machine.run();
  EMX_CHECK(app.verify(), "bitonic sorting produced a wrong result");
  return machine.report();
}

MachineReport run_fft(const MachineConfig& base, std::uint64_t n,
                      std::uint32_t threads) {
  MachineConfig cfg = base;
  Machine machine(cfg);
  apps::FftApp app(machine, apps::FftParams{.n = n, .threads = threads});
  app.setup();
  machine.run();
  return machine.report();
}

void print_panel(const std::string& title, const Table& table, bool csv) {
  std::printf("\n== %s ==\n", title.c_str());
  if (csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_text().c_str(), stdout);
  }
  std::fflush(stdout);
}

std::string seconds_cell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3e", seconds);
  return buf;
}

}  // namespace emx::bench
