// Shared machinery for the figure-reproduction benches: one simulated
// configuration per (app, P, n, h) point, plus uniform table output.
//
// Default sizes are scaled down from the paper's (which ran on real
// hardware at up to 8M elements); pass --full for paper-scale sizes.
// Every run verifies its application result before reporting timings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/config.hpp"
#include "core/instrumentation.hpp"

namespace emx::bench {

/// How "communication time" is extracted from a run. The paper measured
/// wall time around code sections; two defensible readings exist:
///   kIdle         — exposed latency: cycles with no runnable thread;
///   kWallMinusWork— total minus computation minus overhead (switching
///                   lands in communication, as a section timer would
///                   see it). This variant shows the paper's Figure-6
///                   rise beyond four threads.
enum class CommMetric { kIdle, kWallMinusWork };

double comm_seconds(const MachineReport& report, CommMetric metric);

struct FigureOptions {
  std::vector<std::uint32_t> threads;
  std::vector<std::uint64_t> per_proc_sizes;  ///< n / P
  bool full = false;
  bool csv = false;
  CommMetric metric = CommMetric::kIdle;
  MachineConfig base;

  /// Total element counts for a processor-count panel.
  std::vector<std::uint64_t> sizes_for(std::uint32_t procs) const;
};

/// Defines the common flags on `flags` (threads, sizes, full, csv, ...).
void define_figure_flags(CliFlags& flags);

/// Builds options from parsed flags.
FigureOptions figure_options(const CliFlags& flags);

/// Runs multithreaded bitonic sorting; panics if the result is unsorted.
MachineReport run_sort(const MachineConfig& base, std::uint64_t n,
                       std::uint32_t threads);

/// Runs the multithreaded FFT (communication iterations only, as in the
/// paper's evaluation).
MachineReport run_fft(const MachineConfig& base, std::uint64_t n,
                      std::uint32_t threads);

/// Prints a panel table (text or CSV per options).
void print_panel(const std::string& title, const Table& table, bool csv);

/// Seconds formatted like the paper's log axes ("1.23e-02").
std::string seconds_cell(double seconds);

}  // namespace emx::bench
