// Ablation: element-wise split-phase reads (the paper's sorting loop)
// vs the EMC-Y block-read send instruction (§2.2: "remote read request
// for one data and for a block of data").
//
// A synthetic exchange kernel moves `n/P` words per PE from its mate
// either one read at a time (one suspension per word) or in blocks
// (one suspension per block, words streamed at wire rate).
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"

using namespace emx;

namespace {

struct ExchangeParams {
  std::uint64_t words = 1024;
  std::uint32_t block = 1;  ///< 1 = element-wise
};

Cycle run_exchange(std::uint32_t procs, const ExchangeParams& params) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  Machine m(cfg);
  // Source data lives on the mate (pairwise exchange like one bitonic
  // merge step).
  const LocalAddr src_base = rt::kReservedWords;
  const auto dst_base =
      static_cast<LocalAddr>(rt::kReservedWords + params.words);
  for (ProcId p = 0; p < procs; ++p) {
    for (std::uint64_t i = 0; i < params.words; ++i) {
      m.memory(p).write(src_base + static_cast<LocalAddr>(i),
                        static_cast<Word>(p * 1000000 + i));
    }
  }
  const ExchangeParams cap = params;
  const auto entry = m.register_entry(
      [cap, src_base, dst_base, procs](rt::ThreadApi api, Word) -> rt::ThreadBody {
        const ProcId mate = api.proc() ^ (procs / 2);
        if (cap.block <= 1) {
          for (std::uint64_t i = 0; i < cap.words; ++i) {
            co_await api.overhead(11);  // the paper's 12-clock loop body
            const Word v = co_await api.remote_read(
                rt::GlobalAddr{mate, src_base + static_cast<LocalAddr>(i)});
            api.local_write(dst_base + static_cast<LocalAddr>(i), v);
          }
        } else {
          for (std::uint64_t i = 0; i < cap.words; i += cap.block) {
            const auto len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(cap.block, cap.words - i));
            co_await api.overhead(11);
            co_await api.remote_read_block(
                rt::GlobalAddr{mate, src_base + static_cast<LocalAddr>(i)},
                dst_base + static_cast<LocalAddr>(i), len);
          }
        }
        co_await api.iteration_barrier();
      });
  m.configure_barrier(1);
  for (ProcId p = 0; p < procs; ++p) m.spawn(p, entry, 0);
  m.run();
  // Verify the exchange actually happened.
  for (ProcId p = 0; p < procs; ++p) {
    const ProcId mate = p ^ (procs / 2);
    for (std::uint64_t i = 0; i < params.words; i += params.words / 4 + 1) {
      EMX_CHECK(m.memory(p).read(dst_base + static_cast<LocalAddr>(i)) ==
                    static_cast<Word>(mate * 1000000 + i),
                "exchange data mismatch");
    }
  }
  return m.end_cycle();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("words", "2048", "words exchanged per PE")
      .define("blocks", "1,4,16,64,256", "block sizes to sweep (1 = element reads)")
      .define("csv", "false", "emit CSV");
  flags.parse(argc, argv);
  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));
  const auto words = static_cast<std::uint64_t>(flags.integer("words"));

  std::printf("Ablation: element-wise reads vs block reads (P=%u, %llu words/PE)\n",
              procs, static_cast<unsigned long long>(words));
  Table table({"block size", "cycles", "us @20MHz", "speedup vs element"});
  double base = 0.0;
  for (auto b : flags.int_list("blocks")) {
    const Cycle cycles =
        run_exchange(procs, {words, static_cast<std::uint32_t>(b)});
    const double us = cycles_to_seconds(cycles, kDefaultClockHz) * 1e6;
    if (base == 0.0) base = static_cast<double>(cycles);
    char us_buf[32];
    std::snprintf(us_buf, sizeof us_buf, "%.1f", us);
    table.add_row({std::to_string(b), Table::cell(cycles), us_buf,
                   Table::cell(base / static_cast<double>(cycles))});
  }
  if (flags.boolean("csv")) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_text().c_str(), stdout);
  }
  return 0;
}
